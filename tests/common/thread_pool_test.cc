#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace ss {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  int total = 0;
  for (auto& f : futures) {
    total += f.get();
  }
  // Σ i² for i in [0, 100)
  EXPECT_EQ(total, 99 * 100 * 199 / 6);
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Submit([&] {
      int now = running.fetch_add(1, std::memory_order_relaxed) + 1;
      int prev = peak.load(std::memory_order_relaxed);
      while (prev < now && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      running.fetch_sub(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_GT(peak.load(), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destruction joins after running everything already queued: no task is
    // dropped and no future is broken.
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, PropagatesTaskExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ObserverSeesQueueWaitAndDepth) {
  std::atomic<uint64_t> observations{0};
  {
    ThreadPool pool(2, [&](uint64_t /*wait_us*/, size_t /*depth*/) {
      observations.fetch_add(1, std::memory_order_relaxed);
    });
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 20; ++i) {
      futures.push_back(pool.Submit([] {}));
    }
    for (auto& f : futures) {
      f.get();
    }
  }
  EXPECT_EQ(observations.load(), 20u);
}

// Regression: a task submitted while the destructor is stopping the pool
// (here: from inside a running task, after stop_ may already be set and the
// workers may have observed an empty queue and exited) used to be pushed
// onto a queue nobody drains, breaking its promise. It must run somewhere.
TEST(ThreadPool, SubmitDuringShutdownStillRunsTask) {
  for (int iter = 0; iter < 200; ++iter) {
    std::atomic<int> ran{0};
    std::vector<std::future<int>> followups;
    std::mutex followups_mu;
    {
      ThreadPool pool(2);
      std::vector<std::future<void>> roots;
      for (int i = 0; i < 8; ++i) {
        roots.push_back(pool.Submit([&, i] {
          // Race the follow-up submission against pool destruction.
          auto f = pool.Submit([&ran, i] {
            ran.fetch_add(1, std::memory_order_relaxed);
            return i;
          });
          std::lock_guard<std::mutex> lock(followups_mu);
          followups.push_back(std::move(f));
        }));
      }
      // Destructor sets stop_ while root tasks are still submitting.
    }
    ASSERT_EQ(followups.size(), 8u);
    for (auto& f : followups) {
      EXPECT_NO_THROW(f.get());  // no std::future_error{broken_promise}
    }
    EXPECT_EQ(ran.load(), 8);
  }
}

TEST(ThreadPool, SubmitStormDuringDestruction) {
  // Heavier stress: chains of tasks that re-submit until a generation budget
  // runs out, destroyed mid-flight. Every future must resolve.
  std::atomic<uint64_t> executed{0};
  std::vector<std::future<void>> futures;
  std::mutex futures_mu;
  {
    // Declared before the pool so tasks draining during ~ThreadPool can
    // still call it.
    std::function<void(int)> chain;
    ThreadPool pool(4);
    chain = [&](int depth) {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (depth <= 0) {
        return;
      }
      auto f = pool.Submit([&chain, depth] { chain(depth - 1); });
      std::lock_guard<std::mutex> lock(futures_mu);
      futures.push_back(std::move(f));
    };
    for (int i = 0; i < 16; ++i) {
      auto f = pool.Submit([&chain] { chain(8); });
      std::lock_guard<std::mutex> lock(futures_mu);
      futures.push_back(std::move(f));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& f : futures) {
    EXPECT_NO_THROW(f.get());
  }
  EXPECT_EQ(executed.load(), 16u * 9u);
}

TEST(ThreadPool, DefaultThreadCountIsBounded) {
  size_t n = ThreadPool::DefaultThreadCount();
  EXPECT_GE(n, 2u);
  EXPECT_LE(n, 8u);
}

}  // namespace
}  // namespace ss
