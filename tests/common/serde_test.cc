#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "src/common/serde.h"
#include "src/random/rng.h"

namespace ss {
namespace {

TEST(ZigZag, KnownValues) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  EXPECT_EQ(ZigZagEncode(2147483647), 4294967294u);
}

TEST(ZigZag, RoundTripExtremes) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(Writer, VarintEncodingSizes) {
  Writer w;
  w.PutVarint(0);
  EXPECT_EQ(w.size(), 1u);
  w.PutVarint(127);
  EXPECT_EQ(w.size(), 2u);
  w.PutVarint(128);
  EXPECT_EQ(w.size(), 4u);  // 2 bytes for 128
  w.PutVarint(UINT64_MAX);
  EXPECT_EQ(w.size(), 14u);  // 10 bytes for max
}

TEST(ReaderWriter, PrimitiveRoundTrip) {
  Writer w;
  w.PutU8(7);
  w.PutFixed32(0xdeadbeef);
  w.PutFixed64(0x0123456789abcdefULL);
  w.PutVarint(300);
  w.PutSignedVarint(-12345);
  w.PutDouble(3.14159);
  w.PutString("hello world");

  Reader r(w.data());
  EXPECT_EQ(*r.ReadU8(), 7);
  EXPECT_EQ(*r.ReadFixed32(), 0xdeadbeefu);
  EXPECT_EQ(*r.ReadFixed64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*r.ReadVarint(), 300u);
  EXPECT_EQ(*r.ReadSignedVarint(), -12345);
  EXPECT_DOUBLE_EQ(*r.ReadDouble(), 3.14159);
  EXPECT_EQ(*r.ReadString(), "hello world");
  EXPECT_TRUE(r.AtEnd());
}

TEST(Reader, TruncationReportsCorruption) {
  Writer w;
  w.PutFixed64(42);
  std::string data = w.data().substr(0, 5);
  Reader r(data);
  auto result = r.ReadFixed64();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(Reader, TruncatedStringBody) {
  Writer w;
  w.PutString("abcdefgh");
  std::string data = w.data().substr(0, 4);
  Reader r(data);
  auto result = r.ReadString();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(Reader, OverlongVarintRejected) {
  std::string data(11, static_cast<char>(0x80));
  Reader r(data);
  auto result = r.ReadVarint();
  ASSERT_FALSE(result.ok());
}

// A hostile length field near UINT64_MAX must not wrap `pos_ + n` past the
// bounds check: ReadString fails with kCorruption and the reader's position
// is untouched, so callers can keep reporting cleanly.
TEST(Reader, HugeStringLengthFailsClosed) {
  for (uint64_t n : {UINT64_MAX, UINT64_MAX - 1, UINT64_MAX - 7,
                     static_cast<uint64_t>(SIZE_MAX), static_cast<uint64_t>(SIZE_MAX) - 3}) {
    Writer w;
    w.PutVarint(n);
    w.PutRaw("body", 4);
    Reader r(w.data());
    auto result = r.ReadString();
    ASSERT_FALSE(result.ok()) << "n=" << n;
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  }
}

TEST(Reader, HugeRawLengthFailsClosed) {
  std::string data = "tiny";
  for (size_t n : {SIZE_MAX, SIZE_MAX - 1, SIZE_MAX - 3, SIZE_MAX - 4}) {
    Reader r(data);
    auto result = r.ReadRaw(n);
    ASSERT_FALSE(result.ok()) << "n=" << n;
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
    EXPECT_EQ(r.position(), 0u);  // failed read must not corrupt the cursor
  }
  // Mid-buffer: with pos_ = 2, the old `pos_ + n` check wraps to 1 <= size
  // and passes; the remaining()-based check must fail.
  Reader r(data);
  ASSERT_TRUE(r.ReadRaw(2).ok());
  auto wrapped = r.ReadRaw(SIZE_MAX - 1);
  ASSERT_FALSE(wrapped.ok());
  EXPECT_EQ(wrapped.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(r.position(), 2u);
}

// 10-byte varints whose final byte carries payload above bit 63 encode values
// >= 2^64; they used to decode to silently-truncated results.
TEST(Reader, VarintOverflowBitsRejected) {
  // Canonical UINT64_MAX: nine 0xff continuation bytes, final byte 0x01.
  std::string max_enc(9, static_cast<char>(0xff));
  max_enc.push_back(0x01);
  {
    Reader r(max_enc);
    EXPECT_EQ(*r.ReadVarint(), UINT64_MAX);
    EXPECT_TRUE(r.AtEnd());
  }
  // Exact boundary: same prefix, final byte 0x02 = 2^64 + (2^64 - 1).
  for (uint8_t last : {uint8_t{0x02}, uint8_t{0x03}, uint8_t{0x7f}}) {
    std::string enc(9, static_cast<char>(0xff));
    enc.push_back(static_cast<char>(last));
    Reader r(enc);
    auto result = r.ReadVarint();
    ASSERT_FALSE(result.ok()) << "last=" << int{last};
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  }
  // Overflowing 10th byte that still has the continuation bit set fails too
  // (overflow detected before the too-long check).
  {
    std::string enc(10, static_cast<char>(0xff));
    Reader r(enc);
    auto result = r.ReadVarint();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  }
  // A string length encoded as an overflowing varint also fails closed.
  {
    std::string enc(9, static_cast<char>(0xff));
    enc.push_back(0x04);
    enc += "payload";
    Reader r(enc);
    auto result = r.ReadString();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  }
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, Value) {
  Writer w;
  w.PutVarint(GetParam());
  Reader r(w.data());
  EXPECT_EQ(*r.ReadVarint(), GetParam());
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundTrip,
                         ::testing::Values(0u, 1u, 127u, 128u, 16383u, 16384u, 2097151u,
                                           2097152u, (uint64_t{1} << 32) - 1,
                                           uint64_t{1} << 32, UINT64_MAX - 1, UINT64_MAX));

TEST(ReaderWriter, RandomizedMixedRoundTrip) {
  Rng rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    Writer w;
    std::vector<uint64_t> varints;
    std::vector<int64_t> signed_varints;
    std::vector<double> doubles;
    std::vector<std::string> strings;
    for (int i = 0; i < 20; ++i) {
      varints.push_back(rng.NextU64() >> (rng.NextBounded(64)));
      signed_varints.push_back(static_cast<int64_t>(rng.NextU64()));
      doubles.push_back(rng.NextGaussian() * 1e6);
      std::string s;
      for (uint64_t n = rng.NextBounded(32); n > 0; --n) {
        s.push_back(static_cast<char>(rng.NextBounded(256)));
      }
      strings.push_back(std::move(s));
    }
    for (int i = 0; i < 20; ++i) {
      w.PutVarint(varints[static_cast<size_t>(i)]);
      w.PutSignedVarint(signed_varints[static_cast<size_t>(i)]);
      w.PutDouble(doubles[static_cast<size_t>(i)]);
      w.PutString(strings[static_cast<size_t>(i)]);
    }
    Reader r(w.data());
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(*r.ReadVarint(), varints[static_cast<size_t>(i)]);
      EXPECT_EQ(*r.ReadSignedVarint(), signed_varints[static_cast<size_t>(i)]);
      EXPECT_DOUBLE_EQ(*r.ReadDouble(), doubles[static_cast<size_t>(i)]);
      EXPECT_EQ(*r.ReadString(), strings[static_cast<size_t>(i)]);
    }
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(Crc32c, KnownVectors) {
  // Standard CRC32-C test vectors.
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c("123456789"), 0xe3069283u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8a9136aau);
}

TEST(Crc32c, DetectsBitFlip) {
  std::string data = "summary store block payload";
  uint32_t crc = Crc32c(data);
  data[5] ^= 1;
  EXPECT_NE(Crc32c(data), crc);
}

}  // namespace
}  // namespace ss
