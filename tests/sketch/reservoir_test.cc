#include <gtest/gtest.h>

#include <map>

#include "src/sketch/reservoir.h"

namespace ss {
namespace {

TEST(ReservoirSample, KeepsAllWhileUnderCapacity) {
  ReservoirSample sample(10, 1);
  for (int i = 0; i < 7; ++i) {
    sample.Update(i, static_cast<double>(i));
  }
  EXPECT_EQ(sample.items().size(), 7u);
  EXPECT_EQ(sample.population(), 7u);
}

TEST(ReservoirSample, BoundedAtCapacity) {
  ReservoirSample sample(16, 2);
  for (int i = 0; i < 10000; ++i) {
    sample.Update(i, static_cast<double>(i));
  }
  EXPECT_EQ(sample.items().size(), 16u);
  EXPECT_EQ(sample.population(), 10000u);
}

TEST(ReservoirSample, RoughlyUniformInclusion) {
  // Each of 1000 elements should appear with probability ~ k/n = 0.1.
  std::map<int, int> inclusion;
  for (uint64_t seed = 0; seed < 400; ++seed) {
    ReservoirSample sample(100, seed);
    for (int i = 0; i < 1000; ++i) {
      sample.Update(i, static_cast<double>(i));
    }
    for (const auto& item : sample.items()) {
      ++inclusion[static_cast<int>(item.value)];
    }
  }
  // First and last deciles should be sampled at comparable rates.
  int early = 0;
  int late = 0;
  for (int i = 0; i < 100; ++i) {
    early += inclusion[i];
  }
  for (int i = 900; i < 1000; ++i) {
    late += inclusion[i];
  }
  EXPECT_NEAR(static_cast<double>(early) / late, 1.0, 0.15);
}

TEST(ReservoirSample, MergePopulationWeighted) {
  ReservoirSample a(50, 3);
  ReservoirSample b(50, 4);
  for (int i = 0; i < 9000; ++i) {
    a.Update(i, 0.0);  // population A: value 0
  }
  for (int i = 0; i < 1000; ++i) {
    b.Update(i, 1.0);  // population B: value 1
  }
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.population(), 10000u);
  EXPECT_EQ(a.items().size(), 50u);
  // ~90% of merged samples should come from A.
  int from_a = 0;
  for (const auto& item : a.items()) {
    from_a += item.value == 0.0 ? 1 : 0;
  }
  EXPECT_GT(from_a, 33);
  EXPECT_LT(from_a, 50);
}

TEST(ReservoirSample, MergeWithEmpty) {
  ReservoirSample a(10, 5);
  a.Update(1, 1.0);
  ReservoirSample empty(10, 6);
  ASSERT_TRUE(a.MergeFrom(empty).ok());
  EXPECT_EQ(a.items().size(), 1u);
  ASSERT_TRUE(empty.MergeFrom(a).ok());
  EXPECT_EQ(empty.items().size(), 1u);
  EXPECT_EQ(empty.population(), 1u);
}

TEST(ReservoirSample, CapacityMismatchRejected) {
  ReservoirSample a(10, 1);
  ReservoirSample b(20, 1);
  EXPECT_EQ(a.MergeFrom(b).code(), StatusCode::kInvalidArgument);
}

TEST(ReservoirSample, SerdeRoundTrip) {
  ReservoirSample sample(32, 7);
  for (int i = 0; i < 500; ++i) {
    sample.Update(i * 10, static_cast<double>(i));
  }
  Writer w;
  SerializeSummary(sample, w);
  Reader r(w.data());
  auto restored = DeserializeSummary(r);
  ASSERT_TRUE(restored.ok());
  const auto* copy = SummaryCast<ReservoirSample>(restored->get());
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->population(), sample.population());
  ASSERT_EQ(copy->items().size(), sample.items().size());
  for (size_t i = 0; i < copy->items().size(); ++i) {
    EXPECT_EQ(copy->items()[i].ts, sample.items()[i].ts);
    EXPECT_EQ(copy->items()[i].value, sample.items()[i].value);
  }
}

// Regression for the modulo-bias fix in the reservoir's bounded draws: the
// retained sample must be uniform over the input. Chi-squared test on
// per-element inclusion frequency across many independently seeded
// reservoirs; gross non-uniformity (like a biased replacement index) blows
// the statistic far past the threshold.
TEST(ReservoirSample, InclusionFrequencyIsUniformChiSquared) {
  constexpr int kCapacity = 8;
  constexpr int kN = 80;        // elements per reservoir
  constexpr int kTrials = 2000; // independent seeds
  std::vector<int> hits(kN, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    ReservoirSample sample(kCapacity, static_cast<uint64_t>(trial) * 2654435761u + 1);
    for (int i = 0; i < kN; ++i) {
      sample.Update(i, static_cast<double>(i));
    }
    for (const auto& item : sample.items()) {
      ++hits[static_cast<int>(item.value)];
    }
  }
  const double expected = static_cast<double>(kTrials) * kCapacity / kN;
  double chi2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    double d = hits[i] - expected;
    chi2 += d * d / expected;
  }
  // df = 79; the 99.99th percentile is ~136. A uniform sampler passes with
  // huge margin; an index bias concentrates mass and fails by orders of
  // magnitude.
  EXPECT_LT(chi2, 150.0) << "inclusion frequencies deviate from uniform";
}

// Merge re-sampling must also stay uniform: elements from both sides survive
// in proportion to the side populations.
TEST(ReservoirSample, MergeKeepsPopulationWeightedMix) {
  constexpr int kTrials = 3000;
  int from_a = 0;
  int total = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    ReservoirSample a(8, static_cast<uint64_t>(trial) * 2 + 1);
    ReservoirSample b(8, static_cast<uint64_t>(trial) * 2 + 2);
    for (int i = 0; i < 300; ++i) {
      a.Update(i, 1.0);  // population 300
    }
    for (int i = 0; i < 100; ++i) {
      b.Update(i, 2.0);  // population 100
    }
    ASSERT_TRUE(a.MergeFrom(b).ok());
    for (const auto& item : a.items()) {
      from_a += item.value == 1.0 ? 1 : 0;
      ++total;
    }
  }
  // E[share from a] = 300/400 = 0.75; with ~24k draws the tolerance is wide.
  double share = static_cast<double>(from_a) / total;
  EXPECT_NEAR(share, 0.75, 0.02);
}

}  // namespace
}  // namespace ss
