// Deserialization robustness: feeding arbitrary (random or bit-flipped)
// bytes into every persistent decoder must produce a Status error or a
// valid object — never a crash, hang, or unbounded allocation.
#include <gtest/gtest.h>

#include "src/core/stream.h"
#include "src/core/window.h"
#include "src/random/rng.h"
#include "src/sketch/summary.h"

namespace ss {
namespace {

std::string RandomBytes(Rng& rng, size_t max_len) {
  std::string out;
  size_t n = rng.NextBounded(max_len);
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>(rng.NextBounded(256)));
  }
  return out;
}

TEST(SerdeFuzz, RandomBytesIntoSummaryDecoder) {
  Rng rng(0xf022);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string bytes = RandomBytes(rng, 256);
    Reader reader(bytes);
    auto result = DeserializeSummary(reader);  // must not crash
    (void)result;
  }
}

TEST(SerdeFuzz, RandomBytesIntoWindowDecoder) {
  Rng rng(0xf023);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string bytes = RandomBytes(rng, 512);
    Reader reader(bytes);
    auto result = SummaryWindow::Deserialize(reader);
    (void)result;
  }
}

TEST(SerdeFuzz, RandomBytesIntoLandmarkDecoder) {
  Rng rng(0xf024);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string bytes = RandomBytes(rng, 512);
    Reader reader(bytes);
    auto result = LandmarkWindow::Deserialize(reader);
    (void)result;
  }
}

TEST(SerdeFuzz, RandomBytesIntoConfigDecoders) {
  Rng rng(0xf025);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string bytes = RandomBytes(rng, 128);
    {
      Reader reader(bytes);
      (void)StreamConfig::Deserialize(reader);
    }
    {
      Reader reader(bytes);
      (void)OperatorSet::Deserialize(reader);
    }
    {
      Reader reader(bytes);
      (void)DeserializeDecay(reader);
    }
  }
}

TEST(SerdeFuzz, BitFlippedValidWindowsNeverCrash) {
  // Start from a valid serialized window and flip one byte at a time:
  // decoders must reject or decode, never crash. (Checksums live one layer
  // down, in the storage engine — the object decoders must be safe on
  // their own.)
  SummaryWindow window(1, 100, 1.5);
  for (uint64_t i = 2; i <= 40; ++i) {
    window.Append(i, static_cast<Timestamp>(100 + i), static_cast<double>(i));
  }
  OperatorSet ops = OperatorSet::Microbench();
  ops.cms_width = 32;
  ops.bloom_bits = 128;
  window.Materialize(ops, 7);
  Writer writer;
  window.Serialize(writer);
  std::string valid = writer.data();

  Rng rng(0xf026);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string corrupted = valid;
    size_t pos = rng.NextBounded(corrupted.size());
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ (1 + rng.NextBounded(255)));
    Reader reader(corrupted);
    auto result = SummaryWindow::Deserialize(reader);
    (void)result;
  }
}

TEST(SerdeFuzz, TruncatedValidWindowsReportCorruption) {
  SummaryWindow window(1, 100, 1.5);
  for (uint64_t i = 2; i <= 20; ++i) {
    window.Append(i, static_cast<Timestamp>(100 + i), 2.0);
  }
  Writer writer;
  window.Serialize(writer);
  std::string valid = writer.data();
  for (size_t len = 0; len < valid.size(); ++len) {
    Reader reader(std::string_view(valid).substr(0, len));
    auto result = SummaryWindow::Deserialize(reader);
    // Truncations either fail or decode a prefix-consistent object; most
    // must fail. Just exercising them is the point: no crash, no hang.
    (void)result;
  }
}

}  // namespace
}  // namespace ss
