// Deserialization robustness: feeding arbitrary (random or bit-flipped)
// bytes into every persistent decoder must produce a Status error or a
// valid object — never a crash, hang, or unbounded allocation.
#include <gtest/gtest.h>

#include "src/core/stream.h"
#include "src/core/window.h"
#include "src/random/rng.h"
#include "src/sketch/spacesaving.h"
#include "src/sketch/summary.h"

namespace ss {
namespace {

std::string RandomBytes(Rng& rng, size_t max_len) {
  std::string out;
  size_t n = rng.NextBounded(max_len);
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>(rng.NextBounded(256)));
  }
  return out;
}

TEST(SerdeFuzz, RandomBytesIntoSummaryDecoder) {
  Rng rng(0xf022);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string bytes = RandomBytes(rng, 256);
    Reader reader(bytes);
    auto result = DeserializeSummary(reader);  // must not crash
    (void)result;
  }
}

TEST(SerdeFuzz, RandomBytesIntoWindowDecoder) {
  Rng rng(0xf023);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string bytes = RandomBytes(rng, 512);
    Reader reader(bytes);
    auto result = SummaryWindow::Deserialize(reader);
    (void)result;
  }
}

TEST(SerdeFuzz, RandomBytesIntoLandmarkDecoder) {
  Rng rng(0xf024);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string bytes = RandomBytes(rng, 512);
    Reader reader(bytes);
    auto result = LandmarkWindow::Deserialize(reader);
    (void)result;
  }
}

TEST(SerdeFuzz, RandomBytesIntoConfigDecoders) {
  Rng rng(0xf025);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string bytes = RandomBytes(rng, 128);
    {
      Reader reader(bytes);
      (void)StreamConfig::Deserialize(reader);
    }
    {
      Reader reader(bytes);
      (void)OperatorSet::Deserialize(reader);
    }
    {
      Reader reader(bytes);
      (void)DeserializeDecay(reader);
    }
  }
}

TEST(SerdeFuzz, BitFlippedValidWindowsNeverCrash) {
  // Start from a valid serialized window and flip one byte at a time:
  // decoders must reject or decode, never crash. (Checksums live one layer
  // down, in the storage engine — the object decoders must be safe on
  // their own.)
  SummaryWindow window(1, 100, 1.5);
  for (uint64_t i = 2; i <= 40; ++i) {
    window.Append(i, static_cast<Timestamp>(100 + i), static_cast<double>(i));
  }
  OperatorSet ops = OperatorSet::Microbench();
  ops.cms_width = 32;
  ops.bloom_bits = 128;
  window.Materialize(ops, 7);
  Writer writer;
  window.Serialize(writer);
  std::string valid = writer.data();

  Rng rng(0xf026);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string corrupted = valid;
    size_t pos = rng.NextBounded(corrupted.size());
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ (1 + rng.NextBounded(255)));
    Reader reader(corrupted);
    auto result = SummaryWindow::Deserialize(reader);
    (void)result;
  }
}

// Per-sketch adversarial coverage: every persistent operator kind is
// serialized populated, then attacked with (a) every truncation length and
// (b) a single-byte mutation at every offset. The decoder must return a
// clean Status error or a valid object — never crash, hang, or trip a
// sanitizer. (The checksum envelope catches these flips in production; the
// decoders must still be safe on their own for legacy/unenveloped values.)
TEST(SerdeFuzz, EverySketchKindSurvivesTruncationAndMutation) {
  OperatorSet ops = OperatorSet::Full();
  ops.bloom_bits = 128;
  ops.cbf_counters = 64;
  ops.cms_width = 32;
  ops.cms_depth = 3;
  ops.hll_precision = 6;
  ops.hist_buckets = 16;
  ops.hist_hi = 8.0;
  ops.quantile_k = 32;
  ops.reservoir_capacity = 16;
  std::vector<std::unique_ptr<Summary>> summaries = ops.CreateAll(11);
  ASSERT_EQ(summaries.size(), 11u);  // all eleven SummaryKinds
  for (auto& summary : summaries) {
    for (uint64_t i = 0; i < 200; ++i) {
      summary->Update(static_cast<Timestamp>(i), static_cast<double>(i % 13) * 0.5);
    }
  }
  for (const auto& summary : summaries) {
    SCOPED_TRACE(SummaryKindName(summary->kind()));
    Writer writer;
    SerializeSummary(*summary, writer);
    const std::string valid = writer.data();
    {
      Reader reader(valid);
      auto roundtrip = DeserializeSummary(reader);
      ASSERT_TRUE(roundtrip.ok()) << roundtrip.status().ToString();
      EXPECT_EQ((*roundtrip)->kind(), summary->kind());
    }
    // Truncations: a cut anywhere must fail cleanly (prefixes of a sketch
    // payload are never a complete sketch).
    for (size_t len = 0; len < valid.size(); ++len) {
      Reader reader(std::string_view(valid).substr(0, len));
      auto result = DeserializeSummary(reader);
      EXPECT_FALSE(result.ok()) << "truncation at " << len << " decoded";
    }
    // Single-byte mutations at every offset: error or valid decode, and the
    // error must be a Status (the harness catches crashes/sanitizer trips).
    for (size_t pos = 0; pos < valid.size(); ++pos) {
      for (uint8_t mask : {0x01, 0x80, 0xff}) {
        std::string mutated = valid;
        mutated[pos] = static_cast<char>(mutated[pos] ^ mask);
        Reader reader(mutated);
        auto result = DeserializeSummary(reader);
        (void)result;
      }
    }
  }
}

TEST(SerdeFuzz, UnknownSummaryKindFailsCleanly) {
  // A kind tag outside the registry must be rejected, not dispatched.
  for (int kind : {0, 12, 42, 255}) {
    Writer writer;
    writer.PutU8(static_cast<uint8_t>(kind));
    writer.PutVarint(4);
    writer.PutVarint(7);
    std::string bytes = writer.data();
    Reader reader(bytes);
    auto result = DeserializeSummary(reader);
    EXPECT_FALSE(result.ok()) << "kind " << kind;
  }
}

// Pin: the slot-count plausibility bound must reject a count whose minimum
// encoding (10 bytes/entry) cannot fit the remaining payload. An off-by-one
// (`remaining/10 + 1`) admits count == remaining/10 + 1, over-reserving and
// starting entry reads that are doomed to fail mid-way.
TEST(SerdeFuzz, SpaceSavingCountBoundIsExact) {
  auto one_entry_payload = [](uint64_t count) {
    Writer writer;
    writer.PutVarint(16);     // capacity
    writer.PutVarint(3);      // total
    writer.PutVarint(count);  // claimed slot count
    writer.PutDouble(1.5);    // exactly one minimum-size entry: 10 bytes
    writer.PutVarint(3);      // slot count
    writer.PutVarint(1);      // slot error
    return writer.data();
  };
  {
    // 10 bytes remaining fit exactly one entry: count == 1 must parse.
    std::string bytes = one_entry_payload(1);
    Reader reader(bytes);
    auto result = SpaceSavingSketch::Deserialize(reader);
    ASSERT_TRUE(result.ok()) << result.status();
  }
  {
    // count == remaining/10 + 1 == 2 cannot fit; it must be rejected by the
    // bound check (a configuration error), not discovered mid-read.
    std::string bytes = one_entry_payload(2);
    Reader reader(bytes);
    auto result = SpaceSavingSketch::Deserialize(reader);
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("bad configuration"), std::string::npos)
        << result.status();
  }
}

TEST(SerdeFuzz, TruncatedValidWindowsReportCorruption) {
  SummaryWindow window(1, 100, 1.5);
  for (uint64_t i = 2; i <= 20; ++i) {
    window.Append(i, static_cast<Timestamp>(100 + i), 2.0);
  }
  Writer writer;
  window.Serialize(writer);
  std::string valid = writer.data();
  for (size_t len = 0; len < valid.size(); ++len) {
    Reader reader(std::string_view(valid).substr(0, len));
    auto result = SummaryWindow::Deserialize(reader);
    // Truncations either fail or decode a prefix-consistent object; most
    // must fail. Just exercising them is the point: no crash, no hang.
    (void)result;
  }
}

}  // namespace
}  // namespace ss
