#include <gtest/gtest.h>

#include "src/random/rng.h"
#include "src/sketch/bloom.h"

namespace ss {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bloom(1024, 5);
  for (int i = 0; i < 100; ++i) {
    bloom.Update(i, static_cast<double>(i));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(bloom.MightContain(static_cast<double>(i))) << i;
  }
}

TEST(BloomFilter, FalsePositiveRateMatchesTheory) {
  // Width 1024 bits / 5 hashes at 142 inserts: theoretical FP rate
  // (1 − e^{−kn/m})^k = (1 − e^{−5·142/1024})^5 ≈ 3.1%.
  BloomFilter bloom(1024, 5);
  for (int i = 0; i < 142; ++i) {
    bloom.Update(i, static_cast<double>(i));
  }
  int fp = 0;
  int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    if (bloom.MightContain(static_cast<double>(100000 + i))) {
      ++fp;
    }
  }
  double rate = static_cast<double>(fp) / probes;
  EXPECT_NEAR(rate, 0.031, 0.012);
  EXPECT_NEAR(bloom.FalsePositiveRate(), rate, 0.01);
}

TEST(BloomFilter, UnionEqualsCombinedConstruction) {
  BloomFilter a(512, 5);
  BloomFilter b(512, 5);
  BloomFilter both(512, 5);
  for (int i = 0; i < 50; ++i) {
    a.Update(i, static_cast<double>(i));
    both.Update(i, static_cast<double>(i));
  }
  for (int i = 50; i < 100; ++i) {
    b.Update(i, static_cast<double>(i));
    both.Update(i, static_cast<double>(i));
  }
  ASSERT_TRUE(a.MergeFrom(b).ok());
  // Bitwise-OR union: identical answers to the filter built on A∪B.
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.MightContain(static_cast<double>(i)),
              both.MightContain(static_cast<double>(i)))
        << i;
  }
  EXPECT_EQ(a.inserted_count(), 100u);
}

TEST(BloomFilter, ConfigMismatchRejected) {
  BloomFilter a(512, 5);
  BloomFilter b(1024, 5);
  EXPECT_EQ(a.MergeFrom(b).code(), StatusCode::kInvalidArgument);
  BloomFilter c(512, 4);
  EXPECT_EQ(a.MergeFrom(c).code(), StatusCode::kInvalidArgument);
}

TEST(BloomFilter, SerdeRoundTrip) {
  BloomFilter bloom(1024, 5);
  for (int i = 0; i < 77; ++i) {
    bloom.Update(i, static_cast<double>(i * 3));
  }
  Writer w;
  SerializeSummary(bloom, w);
  Reader r(w.data());
  auto restored = DeserializeSummary(r);
  ASSERT_TRUE(restored.ok());
  const auto* copy = SummaryCast<BloomFilter>(restored->get());
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->inserted_count(), 77u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(copy->MightContain(static_cast<double>(i)),
              bloom.MightContain(static_cast<double>(i)));
  }
}

TEST(BloomFilter, BitWidthRoundedToWords) {
  BloomFilter bloom(100, 3);
  EXPECT_EQ(bloom.num_bits() % 64, 0u);
  EXPECT_GE(bloom.num_bits(), 100u);
}

TEST(BloomFilter, EmptyFilterHasZeroFpRate) {
  BloomFilter bloom(512, 5);
  EXPECT_EQ(bloom.FalsePositiveRate(), 0.0);
  EXPECT_FALSE(bloom.MightContain(1.0));
}

}  // namespace
}  // namespace ss
