#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/random/rng.h"
#include "src/random/zipf.h"
#include "src/sketch/cms.h"
#include "src/sketch/counting_bloom.h"

namespace ss {
namespace {

TEST(CountMinSketch, NeverUnderestimates) {
  CountMinSketch cms(1000, 5);
  std::map<int, int> truth;
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    int v = static_cast<int>(rng.NextBounded(500));
    ++truth[v];
    cms.Update(i, static_cast<double>(v));
  }
  for (const auto& [v, count] : truth) {
    EXPECT_GE(cms.EstimateCount(static_cast<double>(v)), static_cast<uint64_t>(count));
  }
  EXPECT_EQ(cms.total_count(), 20000u);
}

TEST(CountMinSketch, OverestimateBounded) {
  CountMinSketch cms(1000, 5);
  Rng rng(2);
  std::map<int, int> truth;
  int n = 50000;
  for (int i = 0; i < n; ++i) {
    int v = static_cast<int>(rng.NextBounded(2000));
    ++truth[v];
    cms.Update(i, static_cast<double>(v));
  }
  // CMS error bound: overestimate <= e/width * N with prob 1-e^-depth.
  double bound = 2.718281828 / 1000.0 * n;
  int violations = 0;
  for (const auto& [v, count] : truth) {
    double err =
        static_cast<double>(cms.EstimateCount(static_cast<double>(v))) - count;
    if (err > bound) {
      ++violations;
    }
  }
  EXPECT_LE(violations, static_cast<int>(truth.size() / 100));
}

TEST(CountMinSketch, ZipfHeavyHittersAccurate) {
  CountMinSketch cms(1000, 5);
  ZipfSampler zipf(10000, 1.1);
  Rng rng(3);
  std::map<int64_t, int> truth;
  for (int i = 0; i < 100000; ++i) {
    int64_t v = zipf.Sample(rng);
    ++truth[v];
    cms.Update(i, static_cast<double>(v));
  }
  // Top ranks should be estimated within a few percent.
  for (int64_t rank = 1; rank <= 5; ++rank) {
    double est = static_cast<double>(cms.EstimateCount(static_cast<double>(rank)));
    double actual = truth[rank];
    EXPECT_NEAR(est, actual, actual * 0.05 + 300) << "rank " << rank;
  }
}

TEST(CountMinSketch, CorrectedEstimateReducesBias) {
  // With many small contributors the per-row collision mass concentrates
  // around its mean, so subtracting it (count-mean-min) removes most of the
  // raw min-estimate's systematic overcount.
  CountMinSketch cms(128, 5);
  Rng rng(11);
  std::map<int64_t, int> truth;
  for (int i = 0; i < 100000; ++i) {
    int64_t v = static_cast<int64_t>(rng.NextBounded(2000));
    ++truth[v];
    cms.Update(i, static_cast<double>(v));
  }
  double raw_err = 0;
  double corrected_err = 0;
  for (int64_t v = 0; v < 200; ++v) {
    double actual = truth[v];
    raw_err +=
        std::abs(static_cast<double>(cms.EstimateCount(static_cast<double>(v))) - actual);
    corrected_err += std::abs(cms.EstimateCountCorrected(static_cast<double>(v)) - actual);
  }
  EXPECT_LT(corrected_err, raw_err * 0.2);
}

TEST(CountMinSketch, CorrectedEstimateNearZeroForAbsentValues) {
  CountMinSketch cms(256, 5);
  Rng rng(12);
  for (int i = 0; i < 50000; ++i) {
    cms.Update(i, static_cast<double>(rng.NextBounded(1000)));
  }
  double total_absent = 0;
  for (int v = 5000; v < 5050; ++v) {
    total_absent += cms.EstimateCountCorrected(static_cast<double>(v));
  }
  // Average corrected estimate for absent values stays near the noise floor.
  EXPECT_LT(total_absent / 50.0, 50000.0 / 256 * 0.5);
  // And it never exceeds the conservative min-estimate.
  for (int v = 5000; v < 5010; ++v) {
    EXPECT_LE(cms.EstimateCountCorrected(static_cast<double>(v)),
              static_cast<double>(cms.EstimateCount(static_cast<double>(v))));
  }
}

TEST(CountMinSketch, UnionEqualsCombined) {
  CountMinSketch a(256, 4);
  CountMinSketch b(256, 4);
  CountMinSketch both(256, 4);
  for (int i = 0; i < 1000; ++i) {
    double v = static_cast<double>(i % 50);
    if (i % 2 == 0) {
      a.Update(i, v);
    } else {
      b.Update(i, v);
    }
    both.Update(i, v);
  }
  ASSERT_TRUE(a.MergeFrom(b).ok());
  for (int v = 0; v < 50; ++v) {
    EXPECT_EQ(a.EstimateCount(v), both.EstimateCount(v)) << v;
  }
  EXPECT_EQ(a.total_count(), both.total_count());
}

TEST(CountMinSketch, SerdeRoundTrip) {
  CountMinSketch cms(128, 3);
  for (int i = 0; i < 500; ++i) {
    cms.Update(i, static_cast<double>(i % 17));
  }
  Writer w;
  SerializeSummary(cms, w);
  Reader r(w.data());
  auto restored = DeserializeSummary(r);
  ASSERT_TRUE(restored.ok());
  const auto* copy = SummaryCast<CountMinSketch>(restored->get());
  ASSERT_NE(copy, nullptr);
  for (int v = 0; v < 17; ++v) {
    EXPECT_EQ(copy->EstimateCount(v), cms.EstimateCount(v));
  }
}

// Regression: a table whose probed cells all saturate at UINT64_MAX must
// report UINT64_MAX, not 0 — the old sentinel-initialized min loop read a
// fully saturated probe set as "no cell found" and answered empty.
TEST(CountMinSketch, SaturatedCellsReportSaturationNotZero) {
  CountMinSketch cms(4, 3);
  const uint64_t h = Hash64(uint64_t{0xdecafbad});
  cms.AddHash(h, UINT64_MAX);
  EXPECT_EQ(cms.EstimateCountHash(h), UINT64_MAX);
}

// Regression: for even depth the count-mean-min median must average the two
// middle corrected rows; taking only the upper-middle one biases upward.
// The expected value is recomputed here from a shadow table driven by the
// same public probe primitives (Hash64 / Mix64 / NthHash) the sketch uses.
TEST(CountMinSketch, EvenDepthMedianAveragesMiddleRows) {
  constexpr uint32_t kWidth = 3;
  constexpr uint32_t kDepth = 4;
  int discriminating = 0;  // seeds where the old (upper-middle) answer differs
  for (uint64_t seed = 0; seed < 40; ++seed) {
    CountMinSketch cms(kWidth, kDepth);
    std::vector<uint64_t> shadow(static_cast<size_t>(kWidth) * kDepth, 0);
    uint64_t total = 0;
    auto add = [&](uint64_t hash) {
      cms.AddHash(hash);
      uint64_t h2 = Mix64(hash);
      for (uint32_t row = 0; row < kDepth; ++row) {
        shadow[row * kWidth + NthHash(hash, h2, row) % kWidth] += 1;
      }
      ++total;
    };
    const uint64_t target = Hash64(seed * 977 + 5);
    add(target);
    Rng rng(seed);
    for (int i = 0; i < 40; ++i) {
      add(Hash64(rng.NextU64()));
    }
    // Shadow count-mean-min with the documented even-depth averaging.
    uint64_t h2 = Mix64(target);
    std::vector<double> corrected(kDepth);
    uint64_t raw_min = UINT64_MAX;
    for (uint32_t row = 0; row < kDepth; ++row) {
      uint64_t raw = shadow[row * kWidth + NthHash(target, h2, row) % kWidth];
      raw_min = std::min(raw_min, raw);
      corrected[row] =
          static_cast<double>(raw) -
          (static_cast<double>(total) - static_cast<double>(raw)) / (kWidth - 1);
    }
    std::sort(corrected.begin(), corrected.end());
    double expected = std::clamp((corrected[1] + corrected[2]) / 2.0, 0.0,
                                 static_cast<double>(raw_min));
    double old_biased =
        std::clamp(corrected[2], 0.0, static_cast<double>(raw_min));  // upper-middle only
    EXPECT_DOUBLE_EQ(cms.EstimateCountCorrectedHash(target), expected) << "seed=" << seed;
    if (expected != old_biased) {
      ++discriminating;
    }
  }
  // The fixture must actually exercise the averaging path, or the test could
  // never fail on the pre-fix code.
  EXPECT_GT(discriminating, 5);
}

TEST(CountingBloom, MembershipAndFrequency) {
  CountingBloomFilter cbf(1024, 5);
  for (int rep = 0; rep < 7; ++rep) {
    cbf.Update(rep, 42.0);
  }
  cbf.Update(100, 43.0);
  EXPECT_TRUE(cbf.MightContain(42.0));
  EXPECT_TRUE(cbf.MightContain(43.0));
  EXPECT_FALSE(cbf.MightContain(99999.0));
  EXPECT_GE(cbf.EstimateCount(42.0), 7u);
  EXPECT_GE(cbf.EstimateCount(43.0), 1u);
}

TEST(CountingBloom, UnionAddsCounters) {
  CountingBloomFilter a(512, 4);
  CountingBloomFilter b(512, 4);
  for (int i = 0; i < 3; ++i) {
    a.Update(i, 7.0);
  }
  for (int i = 0; i < 4; ++i) {
    b.Update(i, 7.0);
  }
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_GE(a.EstimateCount(7.0), 7u);
  EXPECT_EQ(a.inserted_count(), 7u);
}

TEST(CountingBloom, SerdeRoundTrip) {
  CountingBloomFilter cbf(256, 3);
  for (int i = 0; i < 40; ++i) {
    cbf.Update(i, static_cast<double>(i % 5));
  }
  Writer w;
  SerializeSummary(cbf, w);
  Reader r(w.data());
  auto restored = DeserializeSummary(r);
  ASSERT_TRUE(restored.ok());
  const auto* copy = SummaryCast<CountingBloomFilter>(restored->get());
  ASSERT_NE(copy, nullptr);
  for (int v = 0; v < 5; ++v) {
    EXPECT_EQ(copy->EstimateCount(v), cbf.EstimateCount(v));
  }
}

}  // namespace
}  // namespace ss
