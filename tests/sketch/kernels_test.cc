// SIMD kernel / scalar-reference equivalence: the dispatched batch kernels
// must leave bit-identical sketch state to the per-element scalar paths for
// every batch size, or persisted tables, checksums, and merge semantics
// would silently diverge between machines. The CI scalar leg re-runs this
// whole binary with SS_FORCE_SCALAR=1, covering both dispatch targets.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "src/random/rng.h"
#include "src/sketch/bloom.h"
#include "src/sketch/cms.h"
#include "src/sketch/hyperloglog.h"
#include "src/sketch/kernels.h"

namespace ss {
namespace {

std::string SerializeState(const Summary& summary) {
  Writer writer;
  summary.Serialize(writer);
  return writer.data();
}

std::vector<uint64_t> RandomHashes(size_t n, uint64_t seed) {
  std::vector<uint64_t> hashes(n);
  Rng rng(seed);
  for (auto& h : hashes) {
    h = rng.NextU64();
  }
  return hashes;
}

const size_t kBatchSizes[] = {1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64, 100, 257, 1024, 4096};

TEST(Kernels, ActiveImplReportsName) {
  kernels::Impl impl = kernels::ActiveImpl();
  EXPECT_NE(kernels::ImplName(impl), nullptr);
  const char* force = std::getenv("SS_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' && force[0] != '0') {
    EXPECT_EQ(impl, kernels::Impl::kScalar);
  }
}

TEST(Kernels, HashValuesMatchesScalarHashValue) {
  Rng rng(0x4a11);
  for (size_t n : kBatchSizes) {
    std::vector<double> values(n);
    for (auto& v : values) {
      v = rng.NextGaussian() * 1e6;
    }
    std::vector<uint64_t> hashes(n);
    kernels::HashValues(values.data(), n, hashes.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hashes[i], HashValue(values[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Kernels, CmsBatchBitIdenticalToSequential) {
  for (size_t n : kBatchSizes) {
    // Odd widths exercise the magic-division modulo; 1024 the pow2 path.
    for (uint32_t width : {7u, 1000u, 1024u}) {
      CountMinSketch batched(width, 5);
      CountMinSketch sequential(width, 5);
      std::vector<uint64_t> hashes = RandomHashes(n, 0xc0de + n + width);
      batched.AddHashes(hashes);
      for (uint64_t h : hashes) {
        sequential.AddHash(h);
      }
      EXPECT_EQ(SerializeState(batched), SerializeState(sequential))
          << "n=" << n << " width=" << width;
    }
  }
}

TEST(Kernels, BloomBatchBitIdenticalToSequential) {
  for (size_t n : kBatchSizes) {
    for (uint32_t bits : {67u, 1024u, 4099u}) {
      BloomFilter batched(bits, 5);
      BloomFilter sequential(bits, 5);
      std::vector<uint64_t> hashes = RandomHashes(n, 0xb100 + n + bits);
      batched.AddHashes(hashes);
      for (uint64_t h : hashes) {
        sequential.AddHash(h);
      }
      EXPECT_EQ(SerializeState(batched), SerializeState(sequential))
          << "n=" << n << " bits=" << bits;
    }
  }
}

TEST(Kernels, BloomTestHashesMatchesMightContain) {
  BloomFilter bloom(512, 5);
  std::vector<uint64_t> inserted = RandomHashes(100, 0xfeed);
  bloom.AddHashes(inserted);
  std::vector<uint64_t> probes = inserted;
  std::vector<uint64_t> absent = RandomHashes(100, 0xdead);
  probes.insert(probes.end(), absent.begin(), absent.end());
  std::vector<uint8_t> out(probes.size());
  bloom.TestHashes(probes, out.data());
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(out[i] != 0, bloom.MightContainHash(probes[i])) << "i=" << i;
  }
}

TEST(Kernels, HllBatchBitIdenticalToSequential) {
  for (size_t n : kBatchSizes) {
    HyperLogLog batched(10);
    HyperLogLog sequential(10);
    std::vector<uint64_t> hashes = RandomHashes(n, 0xa011 + n);
    batched.AddHashes(hashes);
    for (uint64_t h : hashes) {
      sequential.AddHash(h);
    }
    EXPECT_EQ(SerializeState(batched), SerializeState(sequential)) << "n=" << n;
  }
}

// The AVX2 modulo is a magic-multiply reduction (libdivide's u64 scheme);
// it must agree with the hardware `%` for every divisor, including powers of
// two, divisors with the add-fixup path, and extreme numerators.
TEST(Kernels, DivMagicMatchesHardwareModulo) {
  Rng rng(0xd170);
  std::vector<uint64_t> divisors = {1,  2,   3,    4,    5,    7,        8,
                                    9,  63,  64,   65,   999,  1000,     1024,
                                    3u, 97u, 4099, 1u << 20, (1u << 20) + 1, UINT32_MAX};
  for (int i = 0; i < 40; ++i) {
    divisors.push_back(rng.NextU64() % 100000 + 1);
    divisors.push_back(rng.NextU64() | 1);  // huge odd divisors
  }
  std::vector<uint64_t> numerators = {0, 1, 2, UINT64_MAX, UINT64_MAX - 1};
  for (int i = 0; i < 200; ++i) {
    numerators.push_back(rng.NextU64());
  }
  for (uint64_t d : divisors) {
    kernels::internal::DivMagic magic = kernels::internal::MakeDivMagic(d);
    for (uint64_t n : numerators) {
      ASSERT_EQ(kernels::internal::ModApply(n, magic), n % d) << "n=" << n << " d=" << d;
    }
  }
}

}  // namespace
}  // namespace ss
