#include <gtest/gtest.h>

#include <cmath>

#include "src/random/rng.h"
#include "src/sketch/hyperloglog.h"

namespace ss {
namespace {

TEST(HyperLogLog, SmallCardinalityExact) {
  HyperLogLog hll(12);
  for (int i = 0; i < 100; ++i) {
    hll.Update(i, static_cast<double>(i));
  }
  // Linear-counting regime: should be essentially exact.
  EXPECT_NEAR(hll.EstimateCardinality(), 100.0, 3.0);
}

TEST(HyperLogLog, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (int rep = 0; rep < 1000; ++rep) {
    for (int i = 0; i < 10; ++i) {
      hll.Update(rep, static_cast<double>(i));
    }
  }
  EXPECT_NEAR(hll.EstimateCardinality(), 10.0, 1.0);
}

TEST(HyperLogLog, LargeCardinalityWithinErrorBound) {
  HyperLogLog hll(12);  // σ ≈ 1.04/sqrt(4096) ≈ 1.6%
  int n = 200000;
  for (int i = 0; i < n; ++i) {
    hll.Update(i, static_cast<double>(i));
  }
  double est = hll.EstimateCardinality();
  EXPECT_NEAR(est, n, n * 0.05);  // 3σ margin
}

TEST(HyperLogLog, UnionEqualsCombined) {
  HyperLogLog a(10);
  HyperLogLog b(10);
  HyperLogLog both(10);
  for (int i = 0; i < 5000; ++i) {
    double v = static_cast<double>(i);
    if (i % 2 == 0) {
      a.Update(i, v);
    } else {
      b.Update(i, v);
    }
    both.Update(i, v);
  }
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_DOUBLE_EQ(a.EstimateCardinality(), both.EstimateCardinality());
}

TEST(HyperLogLog, OverlappingUnionCountsDistinct) {
  HyperLogLog a(12);
  HyperLogLog b(12);
  for (int i = 0; i < 1000; ++i) {
    a.Update(i, static_cast<double>(i));  // 0..999
  }
  for (int i = 500; i < 1500; ++i) {
    b.Update(i, static_cast<double>(i));  // 500..1499
  }
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_NEAR(a.EstimateCardinality(), 1500.0, 75.0);
}

TEST(HyperLogLog, PrecisionMismatchRejected) {
  HyperLogLog a(10);
  HyperLogLog b(12);
  EXPECT_EQ(a.MergeFrom(b).code(), StatusCode::kInvalidArgument);
}

TEST(HyperLogLog, SerdeRoundTrip) {
  HyperLogLog hll(11);
  for (int i = 0; i < 3000; ++i) {
    hll.Update(i, static_cast<double>(i * 7));
  }
  Writer w;
  SerializeSummary(hll, w);
  Reader r(w.data());
  auto restored = DeserializeSummary(r);
  ASSERT_TRUE(restored.ok());
  const auto* copy = SummaryCast<HyperLogLog>(restored->get());
  ASSERT_NE(copy, nullptr);
  EXPECT_DOUBLE_EQ(copy->EstimateCardinality(), hll.EstimateCardinality());
}

}  // namespace
}  // namespace ss
