#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/random/rng.h"
#include "src/sketch/quantile.h"

namespace ss {
namespace {

TEST(QuantileSketch, ExactWhileSmall) {
  QuantileSketch sketch(128, 1);
  for (int i = 1; i <= 100; ++i) {
    sketch.Update(i, static_cast<double>(i));
  }
  EXPECT_NEAR(sketch.EstimateQuantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(sketch.EstimateQuantile(0.0), 1.0, 1.0);
  EXPECT_NEAR(sketch.EstimateQuantile(1.0), 100.0, 1.0);
}

TEST(QuantileSketch, LargeStreamRankError) {
  QuantileSketch sketch(256, 2);
  int n = 100000;
  for (int i = 0; i < n; ++i) {
    sketch.Update(i, static_cast<double>(i));
  }
  EXPECT_EQ(sketch.total_count(), static_cast<uint64_t>(n));
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    double est = sketch.EstimateQuantile(q);
    double rank_error = std::abs(est / n - q);
    EXPECT_LT(rank_error, 0.05) << "q=" << q << " est=" << est;
  }
}

TEST(QuantileSketch, RankAndQuantileConsistent) {
  QuantileSketch sketch(128, 3);
  Rng rng(9);
  for (int i = 0; i < 20000; ++i) {
    sketch.Update(i, rng.NextGaussian());
  }
  double median = sketch.EstimateQuantile(0.5);
  EXPECT_NEAR(sketch.EstimateRank(median), 0.5, 0.06);
  EXPECT_NEAR(median, 0.0, 0.1);
}

TEST(QuantileSketch, MergePreservesDistribution) {
  QuantileSketch a(128, 4);
  QuantileSketch b(128, 5);
  // a holds low half, b holds high half.
  for (int i = 0; i < 20000; ++i) {
    a.Update(i, static_cast<double>(i % 500));
    b.Update(i, static_cast<double>(500 + i % 500));
  }
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.total_count(), 40000u);
  EXPECT_NEAR(a.EstimateQuantile(0.5), 500.0, 50.0);
  EXPECT_NEAR(a.EstimateQuantile(0.25), 250.0, 50.0);
  EXPECT_NEAR(a.EstimateQuantile(0.75), 750.0, 50.0);
}

TEST(QuantileSketch, KMismatchRejected) {
  QuantileSketch a(128, 1);
  QuantileSketch b(64, 1);
  EXPECT_EQ(a.MergeFrom(b).code(), StatusCode::kInvalidArgument);
}

TEST(QuantileSketch, BoundedMemory) {
  QuantileSketch sketch(64, 6);
  for (int i = 0; i < 1000000; ++i) {
    sketch.Update(i, static_cast<double>(i));
  }
  // Memory is O(k log(n/k)), far below raw storage.
  EXPECT_LT(sketch.SizeBytes(), 64u * 24 * sizeof(double));
}

TEST(QuantileSketch, SerdeRoundTrip) {
  QuantileSketch sketch(128, 7);
  for (int i = 0; i < 5000; ++i) {
    sketch.Update(i, static_cast<double>(i % 777));
  }
  Writer w;
  SerializeSummary(sketch, w);
  Reader r(w.data());
  auto restored = DeserializeSummary(r);
  ASSERT_TRUE(restored.ok());
  const auto* copy = SummaryCast<QuantileSketch>(restored->get());
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->total_count(), sketch.total_count());
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(copy->EstimateQuantile(q), sketch.EstimateQuantile(q));
  }
}

TEST(QuantileSketch, EmptySketch) {
  QuantileSketch sketch(128, 8);
  EXPECT_EQ(sketch.EstimateQuantile(0.5), 0.0);
  EXPECT_EQ(sketch.EstimateRank(1.0), 0.0);
}

}  // namespace
}  // namespace ss
