#include <gtest/gtest.h>

#include "src/sketch/aggregates.h"

namespace ss {
namespace {

TEST(CountSummary, CountsAndMerges) {
  CountSummary a;
  CountSummary b;
  for (int i = 0; i < 5; ++i) {
    a.Update(i, 1.0);
  }
  for (int i = 0; i < 3; ++i) {
    b.Update(i, 2.0);
  }
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.count(), 8u);
}

TEST(CountSummary, SerdeRoundTrip) {
  CountSummary a(12345);
  Writer w;
  SerializeSummary(a, w);
  Reader r(w.data());
  auto restored = DeserializeSummary(r);
  ASSERT_TRUE(restored.ok());
  const auto* count = SummaryCast<CountSummary>(restored->get());
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->count(), 12345u);
}

TEST(SumSummary, SumsAndMerges) {
  SumSummary a;
  a.Update(0, 1.5);
  a.Update(1, 2.5);
  SumSummary b;
  b.Update(2, -1.0);
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_DOUBLE_EQ(a.sum(), 3.0);
}

TEST(MinMaxSummary, TracksExtremes) {
  MinMaxSummary a;
  EXPECT_TRUE(a.empty());
  a.Update(0, 5.0);
  a.Update(1, -3.0);
  a.Update(2, 4.0);
  EXPECT_DOUBLE_EQ(a.min(), -3.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(MinMaxSummary, MergeWithEmpty) {
  MinMaxSummary a;
  a.Update(0, 1.0);
  MinMaxSummary empty;
  ASSERT_TRUE(a.MergeFrom(empty).ok());
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  ASSERT_TRUE(empty.MergeFrom(a).ok());
  EXPECT_FALSE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.max(), 1.0);
}

TEST(MinMaxSummary, SerdeRoundTripPreservesEmptiness) {
  MinMaxSummary empty;
  Writer w;
  SerializeSummary(empty, w);
  Reader r(w.data());
  auto restored = DeserializeSummary(r);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(SummaryCast<MinMaxSummary>(restored->get())->empty());
}

TEST(Aggregates, KindMismatchRejected) {
  CountSummary count;
  SumSummary sum;
  EXPECT_EQ(count.MergeFrom(sum).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(sum.MergeFrom(count).code(), StatusCode::kInvalidArgument);
}

TEST(Aggregates, CloneIsIndependent) {
  SumSummary a;
  a.Update(0, 10.0);
  auto clone = a.Clone();
  a.Update(1, 5.0);
  EXPECT_DOUBLE_EQ(SummaryCast<SumSummary>(clone.get())->sum(), 10.0);
  EXPECT_DOUBLE_EQ(a.sum(), 15.0);
}

}  // namespace
}  // namespace ss
