// Property suite for the union requirement of §3.1: for every operator kind,
// union(S(A), S(B)) must summarize A ∪ B. Parameterized across the full
// operator set and several random splits of the input.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/operators.h"
#include "src/random/rng.h"
#include "src/sketch/aggregates.h"
#include "src/sketch/bloom.h"
#include "src/sketch/cms.h"
#include "src/sketch/counting_bloom.h"
#include "src/sketch/histogram.h"
#include "src/sketch/hyperloglog.h"
#include "src/sketch/quantile.h"

namespace ss {
namespace {

struct UnionCase {
  SummaryKind kind;
  uint64_t split_seed;
};

void PrintTo(const UnionCase& c, std::ostream* os) {
  *os << SummaryKindName(c.kind) << "/seed" << c.split_seed;
}

class SummaryUnionProperty : public ::testing::TestWithParam<UnionCase> {
 protected:
  static std::unique_ptr<Summary> Create(SummaryKind kind) {
    switch (kind) {
      case SummaryKind::kCount:
        return std::make_unique<CountSummary>();
      case SummaryKind::kSum:
        return std::make_unique<SumSummary>();
      case SummaryKind::kMinMax:
        return std::make_unique<MinMaxSummary>();
      case SummaryKind::kBloom:
        return std::make_unique<BloomFilter>(2048, 5);
      case SummaryKind::kCountingBloom:
        return std::make_unique<CountingBloomFilter>(2048, 5);
      case SummaryKind::kCountMin:
        return std::make_unique<CountMinSketch>(512, 5);
      case SummaryKind::kHyperLogLog:
        return std::make_unique<HyperLogLog>(12);
      case SummaryKind::kHistogram:
        return std::make_unique<Histogram>(0.0, 1000.0, 64);
      default:
        return nullptr;
    }
  }
};

// Operators whose union is *exactly* the summary of the concatenation (all
// except the randomized quantile/reservoir, tested separately): verify via
// serialized-state equality.
TEST_P(SummaryUnionProperty, UnionEqualsCombinedState) {
  const UnionCase& param = GetParam();
  auto a = Create(param.kind);
  auto b = Create(param.kind);
  auto combined = Create(param.kind);
  ASSERT_NE(a, nullptr);

  Rng rng(1000 + param.split_seed);
  for (int i = 0; i < 3000; ++i) {
    Timestamp ts = i;
    double value = static_cast<double>(rng.NextBounded(700));
    combined->Update(ts, value);
    if (rng.NextBernoulli(0.5)) {
      a->Update(ts, value);
    } else {
      b->Update(ts, value);
    }
  }
  ASSERT_TRUE(a->MergeFrom(*b).ok());

  Writer wa;
  a->Serialize(wa);
  Writer wc;
  combined->Serialize(wc);
  EXPECT_EQ(wa.data(), wc.data()) << "union state differs from combined construction";
}

std::vector<UnionCase> AllCases() {
  std::vector<UnionCase> cases;
  for (SummaryKind kind :
       {SummaryKind::kCount, SummaryKind::kSum, SummaryKind::kMinMax, SummaryKind::kBloom,
        SummaryKind::kCountingBloom, SummaryKind::kCountMin, SummaryKind::kHyperLogLog,
        SummaryKind::kHistogram}) {
    for (uint64_t seed = 0; seed < 5; ++seed) {
      cases.push_back(UnionCase{kind, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllOperators, SummaryUnionProperty, ::testing::ValuesIn(AllCases()));

// The randomized operators (quantile, reservoir) cannot match state
// bit-for-bit; their union contract is distributional.
TEST(RandomizedUnion, QuantileMergeRespectsRankError) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    QuantileSketch a(128, seed * 2 + 1);
    QuantileSketch b(128, seed * 2 + 2);
    Rng rng(seed);
    int n = 40000;
    for (int i = 0; i < n; ++i) {
      double v = static_cast<double>(i);
      if (rng.NextBernoulli(0.5)) {
        a.Update(i, v);
      } else {
        b.Update(i, v);
      }
    }
    ASSERT_TRUE(a.MergeFrom(b).ok());
    EXPECT_EQ(a.total_count(), static_cast<uint64_t>(n));
    for (double q : {0.25, 0.5, 0.75}) {
      EXPECT_NEAR(a.EstimateQuantile(q) / n, q, 0.06) << "seed=" << seed << " q=" << q;
    }
  }
}

TEST(OperatorSet, CreateAllMatchesConfiguration) {
  OperatorSet ops = OperatorSet::Full();
  auto summaries = ops.CreateAll(1);
  EXPECT_EQ(summaries.size(), 11u);
  OperatorSet aggregates = OperatorSet::AggregatesOnly();
  EXPECT_EQ(aggregates.CreateAll(1).size(), 3u);
  OperatorSet micro = OperatorSet::Microbench();
  EXPECT_EQ(micro.CreateAll(1).size(), 5u);  // count, sum, minmax, bloom, cms
}

TEST(OperatorSet, SerdeRoundTrip) {
  OperatorSet ops = OperatorSet::Full();
  ops.bloom_bits = 4096;
  ops.cms_width = 123;
  ops.hist_lo = -7.0;
  ops.hist_hi = 9.0;
  Writer w;
  ops.Serialize(w);
  Reader r(w.data());
  auto restored = OperatorSet::Deserialize(r);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->bloom_bits, 4096u);
  EXPECT_EQ(restored->cms_width, 123u);
  EXPECT_EQ(restored->hist_lo, -7.0);
  EXPECT_EQ(restored->hist_hi, 9.0);
  EXPECT_TRUE(restored->bloom);
  EXPECT_TRUE(restored->reservoir);
}

}  // namespace
}  // namespace ss
