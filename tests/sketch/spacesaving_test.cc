// Space-saving heavy-hitter invariants: for every tracked value the true
// frequency lies in [count - error, count]; untracked values are bounded by
// the minimum tracked count; the parallel-combine union preserves both
// properties across window merges.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/random/rng.h"
#include "src/random/zipf.h"
#include "src/sketch/spacesaving.h"

namespace ss {
namespace {

TEST(SpaceSaving, ExactUnderCapacity) {
  SpaceSavingSketch sketch(8);
  for (int i = 0; i < 5; ++i) {
    for (int rep = 0; rep <= i; ++rep) {
      sketch.Add(static_cast<double>(i));
    }
  }
  EXPECT_EQ(sketch.tracked(), 5u);
  EXPECT_EQ(sketch.total_count(), 15u);
  auto top = sketch.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].value, 4.0);
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].value, 3.0);
  EXPECT_EQ(top[2].value, 2.0);
  // Untracked value: bracketed by [0, min tracked count]... here not full,
  // so an absent value is certainly absent.
  auto absent = sketch.Bracket(99.0);
  EXPECT_EQ(absent.count, 0u);
}

TEST(SpaceSaving, BracketContainsTruthUnderOverflow) {
  SpaceSavingSketch sketch(32);
  ZipfSampler zipf(500, 1.2);
  Rng rng(7);
  std::map<int, uint64_t> truth;
  for (int i = 0; i < 50000; ++i) {
    int v = static_cast<int>(zipf.Sample(rng));
    ++truth[v];
    sketch.Add(static_cast<double>(v));
  }
  EXPECT_EQ(sketch.total_count(), 50000u);
  EXPECT_LE(sketch.tracked(), 32u);
  for (const auto& cand : sketch.TopK(32)) {
    uint64_t actual = truth[static_cast<int>(cand.value)];
    EXPECT_LE(actual, cand.count) << "value " << cand.value;
    EXPECT_GE(actual, cand.count - cand.error) << "value " << cand.value;
  }
  // The heaviest hitters of a 1.2-Zipf easily clear the eviction floor: the
  // true top value must be tracked and ranked first.
  auto top = sketch.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  uint64_t max_truth = 0;
  int max_value = 0;
  for (const auto& [v, c] : truth) {
    if (c > max_truth) {
      max_truth = c;
      max_value = v;
    }
  }
  EXPECT_EQ(static_cast<int>(top[0].value), max_value);
}

TEST(SpaceSaving, MergePreservesBracket) {
  SpaceSavingSketch a(24);
  SpaceSavingSketch b(24);
  ZipfSampler zipf(300, 1.1);
  Rng rng(3);
  std::map<int, uint64_t> truth;
  for (int i = 0; i < 30000; ++i) {
    int v = static_cast<int>(zipf.Sample(rng));
    ++truth[v];
    (i % 2 == 0 ? a : b).Add(static_cast<double>(v));
  }
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.total_count(), 30000u);
  for (const auto& cand : a.TopK(24)) {
    uint64_t actual = truth[static_cast<int>(cand.value)];
    EXPECT_LE(actual, cand.count) << "value " << cand.value;
    EXPECT_GE(actual, cand.count - cand.error) << "value " << cand.value;
  }
}

TEST(SpaceSaving, MergeRejectsMismatchedKind) {
  SpaceSavingSketch a(8);
  SpaceSavingSketch b(16);
  EXPECT_FALSE(a.MergeFrom(b).ok());
}

TEST(SpaceSaving, UpdateIgnoresTimestamp) {
  SpaceSavingSketch sketch(4);
  sketch.Update(123, 7.0);
  sketch.Update(456, 7.0);
  EXPECT_EQ(sketch.Bracket(7.0).count, 2u);
}

TEST(SpaceSaving, SerdeRoundTrip) {
  SpaceSavingSketch sketch(16);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    sketch.Add(static_cast<double>(rng.NextBounded(40)));
  }
  Writer w;
  SerializeSummary(sketch, w);
  Reader r(w.data());
  auto restored = DeserializeSummary(r);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const auto* copy = SummaryCast<SpaceSavingSketch>(restored->get());
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->total_count(), sketch.total_count());
  EXPECT_EQ(copy->capacity(), sketch.capacity());
  Writer w2;
  SerializeSummary(*copy, w2);
  EXPECT_EQ(w.data(), w2.data());
}

TEST(SpaceSaving, CloneIsIndependent) {
  SpaceSavingSketch sketch(8);
  sketch.Add(1.0, 5);
  auto clone = sketch.Clone();
  sketch.Add(1.0, 5);
  EXPECT_EQ(sketch.Bracket(1.0).count, 10u);
  EXPECT_EQ(SummaryCast<SpaceSavingSketch>(clone.get())->Bracket(1.0).count, 5u);
}

TEST(SpaceSaving, TruncatedPayloadFailsCleanly) {
  SpaceSavingSketch sketch(8);
  for (int i = 0; i < 100; ++i) {
    sketch.Add(static_cast<double>(i % 12));
  }
  Writer w;
  SerializeSummary(sketch, w);
  std::string valid = w.data();
  for (size_t len = 0; len < valid.size(); ++len) {
    Reader reader(std::string_view(valid).substr(0, len));
    auto result = DeserializeSummary(reader);
    EXPECT_FALSE(result.ok()) << "truncation at " << len << " decoded";
  }
}

}  // namespace
}  // namespace ss
