#include <gtest/gtest.h>

#include "src/random/rng.h"
#include "src/sketch/histogram.h"

namespace ss {
namespace {

TEST(Histogram, BucketsValuesCorrectly) {
  Histogram hist(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) {
    hist.Update(i, static_cast<double>(i) + 0.5);
  }
  for (uint32_t b = 0; b < 10; ++b) {
    EXPECT_EQ(hist.bucket_count(b), 1u) << b;
  }
  EXPECT_EQ(hist.total_count(), 10u);
}

TEST(Histogram, UnderflowOverflowTracked) {
  Histogram hist(0.0, 1.0, 4);
  hist.Update(0, -5.0);
  hist.Update(1, 2.0);
  hist.Update(2, 0.5);
  EXPECT_EQ(hist.underflow(), 1u);
  EXPECT_EQ(hist.overflow(), 1u);
  EXPECT_EQ(hist.total_count(), 3u);
}

TEST(Histogram, BoundaryValueGoesToUpperBucketRules) {
  Histogram hist(0.0, 10.0, 10);
  hist.Update(0, 0.0);   // first bucket
  hist.Update(1, 10.0);  // == hi -> overflow
  hist.Update(2, 9.999);
  EXPECT_EQ(hist.bucket_count(0), 1u);
  EXPECT_EQ(hist.overflow(), 1u);
  EXPECT_EQ(hist.bucket_count(9), 1u);
}

TEST(Histogram, RangeCountInterpolates) {
  Histogram hist(0.0, 10.0, 10);
  for (int i = 0; i < 1000; ++i) {
    hist.Update(i, (i % 100) / 10.0);  // uniform over [0, 10)
  }
  EXPECT_NEAR(hist.EstimateRangeCount(0.0, 10.0), 1000.0, 1e-9);
  EXPECT_NEAR(hist.EstimateRangeCount(0.0, 5.0), 500.0, 20.0);
  EXPECT_NEAR(hist.EstimateRangeCount(2.5, 3.5), 100.0, 15.0);
  EXPECT_EQ(hist.EstimateRangeCount(7.0, 7.0), 0.0);
}

TEST(Histogram, QuantileOnUniform) {
  Histogram hist(0.0, 100.0, 100);
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    hist.Update(i, rng.NextDouble() * 100.0);
  }
  EXPECT_NEAR(hist.EstimateQuantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(hist.EstimateQuantile(0.9), 90.0, 2.0);
  EXPECT_NEAR(hist.EstimateQuantile(0.1), 10.0, 2.0);
}

TEST(Histogram, UnionEqualsCombined) {
  Histogram a(0.0, 1.0, 16);
  Histogram b(0.0, 1.0, 16);
  Histogram both(0.0, 1.0, 16);
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    double v = rng.NextDouble() * 1.2 - 0.1;  // include under/overflow
    if (i % 3 == 0) {
      a.Update(i, v);
    } else {
      b.Update(i, v);
    }
    both.Update(i, v);
  }
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.total_count(), both.total_count());
  EXPECT_EQ(a.underflow(), both.underflow());
  EXPECT_EQ(a.overflow(), both.overflow());
  for (uint32_t bucket = 0; bucket < 16; ++bucket) {
    EXPECT_EQ(a.bucket_count(bucket), both.bucket_count(bucket)) << bucket;
  }
}

TEST(Histogram, ConfigMismatchRejected) {
  Histogram a(0.0, 1.0, 16);
  Histogram b(0.0, 2.0, 16);
  EXPECT_EQ(a.MergeFrom(b).code(), StatusCode::kInvalidArgument);
  Histogram c(0.0, 1.0, 32);
  EXPECT_EQ(a.MergeFrom(c).code(), StatusCode::kInvalidArgument);
}

TEST(Histogram, SerdeRoundTrip) {
  Histogram hist(-5.0, 5.0, 20);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    hist.Update(i, rng.NextGaussian() * 2);
  }
  Writer w;
  SerializeSummary(hist, w);
  Reader r(w.data());
  auto restored = DeserializeSummary(r);
  ASSERT_TRUE(restored.ok());
  const auto* copy = SummaryCast<Histogram>(restored->get());
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->total_count(), hist.total_count());
  for (uint32_t b = 0; b < 20; ++b) {
    EXPECT_EQ(copy->bucket_count(b), hist.bucket_count(b));
  }
}

}  // namespace
}  // namespace ss
