#include <gtest/gtest.h>

#include "src/baseline/enum_store.h"
#include "src/storage/memory_backend.h"

namespace ss {
namespace {

TEST(EnumStore, ExactAggregates) {
  MemoryBackend kv;
  EnumStore store(1, &kv, /*block_events=*/128);
  double sum = 0;
  for (int t = 1; t <= 1000; ++t) {
    double v = static_cast<double>(t % 9);
    sum += v;
    ASSERT_TRUE(store.Append(t, v).ok());
  }
  EXPECT_DOUBLE_EQ(*store.QueryCount(1, 1000), 1000.0);
  EXPECT_DOUBLE_EQ(*store.QuerySum(1, 1000), sum);
  EXPECT_DOUBLE_EQ(*store.QueryMin(1, 1000), 0.0);
  EXPECT_DOUBLE_EQ(*store.QueryMax(1, 1000), 8.0);
}

TEST(EnumStore, SubRangeExact) {
  MemoryBackend kv;
  EnumStore store(1, &kv, 64);
  for (int t = 1; t <= 1000; ++t) {
    ASSERT_TRUE(store.Append(t, 1.0).ok());
  }
  EXPECT_DOUBLE_EQ(*store.QueryCount(250, 750), 501.0);
  EXPECT_DOUBLE_EQ(*store.QueryCount(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(*store.QueryCount(1001, 2000), 0.0);
}

TEST(EnumStore, FrequencyAndExistence) {
  MemoryBackend kv;
  EnumStore store(1, &kv, 64);
  for (int t = 1; t <= 300; ++t) {
    ASSERT_TRUE(store.Append(t, static_cast<double>(t % 3)).ok());
  }
  EXPECT_DOUBLE_EQ(*store.QueryFrequency(1, 300, 0.0), 100.0);
  EXPECT_TRUE(*store.QueryExistence(1, 300, 2.0));
  EXPECT_FALSE(*store.QueryExistence(1, 300, 9.0));
  EXPECT_FALSE(*store.QueryExistence(1, 1, 2.0));  // value at t=1 is 1
}

TEST(EnumStore, SizeIsLinear) {
  MemoryBackend kv;
  EnumStore store(1, &kv, 256);
  for (int t = 1; t <= 10000; ++t) {
    ASSERT_TRUE(store.Append(t, 0.0).ok());
  }
  EXPECT_EQ(store.SizeBytes(), 10000u * 16);
  EXPECT_EQ(store.element_count(), 10000u);
}

TEST(EnumStore, OutOfOrderRejected) {
  MemoryBackend kv;
  EnumStore store(1, &kv);
  ASSERT_TRUE(store.Append(10, 1.0).ok());
  EXPECT_FALSE(store.Append(9, 1.0).ok());
  EXPECT_TRUE(store.Append(10, 2.0).ok());  // equal timestamps allowed
}

TEST(EnumStore, FlushAndReloadPreservesAnswers) {
  MemoryBackend kv;
  {
    EnumStore store(7, &kv, 64);
    for (int t = 1; t <= 500; ++t) {
      ASSERT_TRUE(store.Append(t, static_cast<double>(t)).ok());
    }
    ASSERT_TRUE(store.Flush().ok());
  }
  auto reloaded = EnumStore::Load(7, &kv, 64);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ((*reloaded)->element_count(), 500u);
  EXPECT_DOUBLE_EQ(*(*reloaded)->QueryCount(1, 500), 500.0);
  EXPECT_DOUBLE_EQ(*(*reloaded)->QuerySum(100, 200), (100.0 + 200.0) * 101.0 / 2.0);
}

TEST(EnumStore, MaterializeReturnsOrderedEvents) {
  MemoryBackend kv;
  EnumStore store(1, &kv, 32);
  for (int t = 1; t <= 200; t += 2) {
    ASSERT_TRUE(store.Append(t, static_cast<double>(t)).ok());
  }
  auto events = store.Materialize(51, 149);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 50u);
  EXPECT_EQ(events->front().ts, 51);
  EXPECT_EQ(events->back().ts, 149);
  for (size_t i = 1; i < events->size(); ++i) {
    EXPECT_LT((*events)[i - 1].ts, (*events)[i].ts);
  }
}

TEST(EnumStore, ScanEarlyStop) {
  MemoryBackend kv;
  EnumStore store(1, &kv, 32);
  for (int t = 1; t <= 100; ++t) {
    ASSERT_TRUE(store.Append(t, 1.0).ok());
  }
  int visited = 0;
  ASSERT_TRUE(store
                  .Scan(1, 100,
                        [&](const Event&) {
                          ++visited;
                          return visited < 5;
                        })
                  .ok());
  EXPECT_EQ(visited, 5);
}

}  // namespace
}  // namespace ss
