#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "src/baseline/exponential_histogram.h"
#include "src/random/rng.h"

namespace ss {
namespace {

// Brute-force reference: exact count of events in (now - window, now].
class ExactWindowCount {
 public:
  explicit ExactWindowCount(Timestamp window) : window_(window) {}
  void Add(Timestamp ts) { events_.push_back(ts); }
  double Count(Timestamp now) {
    while (!events_.empty() && events_.front() <= now - window_) {
      events_.pop_front();
    }
    return static_cast<double>(events_.size());
  }

 private:
  Timestamp window_;
  std::deque<Timestamp> events_;
};

TEST(ExponentialHistogram, ExactWhileSmall) {
  ExponentialHistogram eh(1000, 8);
  for (Timestamp t = 1; t <= 5; ++t) {
    eh.Add(t);
  }
  // With few events all buckets have size 1; the boundary correction costs
  // half of the oldest singleton.
  EXPECT_NEAR(eh.EstimateCount(5), 4.5, 0.51);
}

TEST(ExponentialHistogram, ExpiryDropsOldEvents) {
  ExponentialHistogram eh(100, 8);
  for (Timestamp t = 1; t <= 50; ++t) {
    eh.Add(t);
  }
  EXPECT_NEAR(eh.EstimateCount(1000), 0.0, 0.1);
}

class EhErrorBound : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EhErrorBound, RelativeErrorWithinOneOverK) {
  uint32_t k = GetParam();
  Timestamp window = 5000;
  ExponentialHistogram eh(window, k);
  ExactWindowCount exact(window);
  Rng rng(k * 7 + 1);
  Timestamp t = 0;
  int violations = 0;
  int checks = 0;
  for (int i = 0; i < 50000; ++i) {
    t += 1 + static_cast<Timestamp>(rng.NextBounded(3));
    eh.Add(t);
    exact.Add(t);
    if (i % 97 == 0 && i > 1000) {
      double truth = exact.Count(t);
      double est = eh.EstimateCount(t);
      ++checks;
      if (std::abs(est - truth) > truth / k + 1.0) {
        ++violations;
      }
    }
  }
  EXPECT_EQ(violations, 0) << "violations " << violations << "/" << checks << " at k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Ks, EhErrorBound, ::testing::Values(2u, 4u, 8u, 16u, 32u));

TEST(ExponentialHistogram, MemoryLogarithmicInWindowCount) {
  ExponentialHistogram eh(1 << 30, 8);  // effectively no expiry
  for (Timestamp t = 1; t <= 100000; ++t) {
    eh.Add(t);
  }
  // O(k log N) buckets: with k=8 and N=1e5, limit*log2(N) ≈ 6*17 ≈ 102.
  EXPECT_LT(eh.bucket_count(), 150u);
  EXPECT_GT(eh.bucket_count(), 10u);
}

TEST(ExponentialHistogram, BucketSizesArePowersOfTwoAndMonotone) {
  ExponentialHistogram eh(1 << 30, 4);
  for (Timestamp t = 1; t <= 10000; ++t) {
    eh.Add(t);
  }
  // Verified indirectly: the estimate over everything is near-exact minus
  // half the largest bucket — the largest bucket is at most ~N·2/k, so the
  // estimate must be within ~N/k of N.
  double est = eh.EstimateCount(10000);
  EXPECT_NEAR(est, 10000.0, 10000.0 / 4 + 1);
}

}  // namespace
}  // namespace ss
