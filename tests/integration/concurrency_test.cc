// Concurrency stress: N writer threads × M reader threads × fleet queries
// against one SummaryStore, exercising the registry shared_mutex, the
// per-stream reader/writer locks, the window-payload cache mutex, and the
// QueryAggregate worker pool. Run under TSan by tools/ci.sh
// (SS_SANITIZE=thread); must be clean — any data race is a bug, not flake.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/core/summary_store.h"

namespace ss {
namespace {

StreamConfig TinyConfig() {
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  config.operators = OperatorSet::AggregatesOnly();
  config.raw_threshold = 8;
  return config;
}

constexpr int kWriters = 4;
constexpr int kReaders = 4;
constexpr int kAppendsPerWriter = 8000;

TEST(Concurrency, WritersReadersAndFleetQueries) {
  StoreOptions options;
  options.fleet_query_threads = 4;
  auto store_or = SummaryStore::Open(options);
  ASSERT_TRUE(store_or.ok());
  SummaryStore& store = **store_or;

  std::vector<StreamId> ids;
  for (int w = 0; w < kWriters; ++w) {
    auto sid = store.CreateStream(TinyConfig());
    ASSERT_TRUE(sid.ok());
    ids.push_back(*sid);
  }

  std::atomic<int> writers_done{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;

  // One writer per stream: appends must stay monotone within a stream.
  // Writers alternate batched spans (AppendBatch) with single appends so
  // both ingest paths race the readers; total event count is unchanged.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      int t = 1;
      bool use_batch = (w % 2 == 0);
      while (t <= kAppendsPerWriter && !failed.load()) {
        if (use_batch) {
          std::vector<Event> span;
          for (int i = 0; i < 16 && t <= kAppendsPerWriter; ++i, ++t) {
            span.push_back({static_cast<Timestamp>(t), static_cast<double>(t % 100)});
          }
          if (!store.AppendBatch(ids[w], span).ok()) {
            failed.store(true);
          }
        } else {
          if (!store.Append(ids[w], t, static_cast<double>(t % 100)).ok()) {
            failed.store(true);
          }
          ++t;
        }
        use_batch = !use_batch;
      }
      writers_done.fetch_add(1);
    });
  }

  // Readers mix single-stream queries with fleet queries while writes land.
  // Estimates race the writers, so only invariants are checked here; exact
  // answers are verified after the join below.
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      int iter = 0;
      while (writers_done.load() < kWriters && !failed.load()) {
        QuerySpec spec{.t1 = 1, .t2 = kAppendsPerWriter, .op = QueryOp::kCount};
        auto single = store.Query(ids[(r + iter) % kWriters], spec);
        if (single.ok() && (single->estimate < 0.0 || single->ci_hi < single->ci_lo)) {
          failed.store(true);
        }
        spec.op = QueryOp::kSum;
        auto fleet = store.QueryAggregate(ids, spec);
        if (fleet.ok() && fleet->ci_hi < fleet->ci_lo) {
          failed.store(true);
        }
        ++iter;
      }
    });
  }

  // Maintenance thread: flushes and size probes interleave with traffic.
  threads.emplace_back([&] {
    while (writers_done.load() < kWriters && !failed.load()) {
      ASSERT_TRUE(store.Flush().ok());
      (void)store.TotalSizeBytes();
      (void)store.ListStreams();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  for (auto& thread : threads) {
    thread.join();
  }
  ASSERT_FALSE(failed.load());

  // Quiesced: every append must be visible and exactly countable.
  QuerySpec all{.t1 = 1, .t2 = kAppendsPerWriter, .op = QueryOp::kCount};
  for (StreamId id : ids) {
    auto result = store.Query(id, all);
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result->estimate, kAppendsPerWriter);
  }
  auto fleet = store.QueryAggregate(ids, all);
  ASSERT_TRUE(fleet.ok());
  EXPECT_DOUBLE_EQ(fleet->estimate, static_cast<double>(kWriters) * kAppendsPerWriter);
}

TEST(Concurrency, ParallelQueriesReloadEvictedWindows) {
  // A small window-cache budget plus EvictAll forces concurrent queries to
  // load payloads through the stream's cache mutex — the shared-lock
  // read path's only mutation.
  StoreOptions options;
  options.fleet_query_threads = 4;
  auto store_or = SummaryStore::Open(options);
  ASSERT_TRUE(store_or.ok());
  SummaryStore& store = **store_or;

  StreamConfig config = TinyConfig();
  config.window_cache_bytes = 1024;
  auto sid = store.CreateStream(std::move(config));
  ASSERT_TRUE(sid.ok());
  for (int t = 1; t <= 20000; ++t) {
    ASSERT_TRUE(store.Append(*sid, t, 1.0).ok());
  }
  ASSERT_TRUE(store.EvictAll().ok());

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int r = 0; r < 8; ++r) {
    threads.emplace_back([&, r] {
      for (int i = 0; i < 20; ++i) {
        QuerySpec spec{.t1 = 1 + 97 * r + i, .t2 = 19000 - 31 * i, .op = QueryOp::kCount};
        auto result = store.Query(*sid, spec);
        if (!result.ok() || result->estimate <= 0.0) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_FALSE(failed.load());
}

TEST(Concurrency, StreamLifecycleChurnUnderTraffic) {
  // Create/delete churn takes the registry lock exclusive while appends,
  // queries and fleet queries hammer the shared path on stable streams.
  StoreOptions options;
  options.fleet_query_threads = 2;
  auto store_or = SummaryStore::Open(options);
  ASSERT_TRUE(store_or.ok());
  SummaryStore& store = **store_or;

  std::vector<StreamId> stable;
  for (int s = 0; s < 2; ++s) {
    stable.push_back(*store.CreateStream(TinyConfig()));
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (size_t w = 0; w < stable.size(); ++w) {
    threads.emplace_back([&, w] {
      for (int t = 1; t <= 4000 && !failed.load(); ++t) {
        if (!store.Append(stable[w], t, 1.0).ok()) {
          failed.store(true);
        }
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load()) {
      QuerySpec spec{.t1 = 1, .t2 = 4000, .op = QueryOp::kCount};
      auto fleet = store.QueryAggregate(stable, spec);
      if (!fleet.ok()) {
        failed.store(true);  // stable streams are never deleted
      }
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      auto sid = store.CreateStream(TinyConfig());
      if (!sid.ok() || !store.Append(*sid, 1, 1.0).ok() ||
          !store.DeleteStream(*sid).ok()) {
        failed.store(true);
        break;
      }
    }
    stop.store(true);
  });
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(store.ListStreams().size(), stable.size());
}

}  // namespace
}  // namespace ss
