// End-to-end scenarios across the full stack: workload generators ->
// SummaryStore (LSM-backed) -> query engine -> analytics, including
// durability across process-style reopen and landmark-assisted outlier
// detection (the §7.1.2 pipeline in miniature).
#include <gtest/gtest.h>

#include "src/analytics/outlier.h"
#include "src/analytics/reconstruct.h"
#include "src/baseline/enum_store.h"
#include "src/core/summary_store.h"
#include "src/workload/generators.h"

namespace ss {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ss_int_" + std::to_string(reinterpret_cast<uintptr_t>(this));
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  }
  void TearDown() override { ASSERT_TRUE(RemoveDirRecursive(dir_).ok()); }

  std::string dir_;
};

TEST_F(IntegrationTest, SummaryStoreTracksEnumStoreOnAggregates) {
  // Ingest the same Poisson stream into SummaryStore (100x-style decay) and
  // the exact EnumStore; compare range counts/sums over many random ranges.
  StoreOptions options;
  options.dir = dir_;
  auto store = SummaryStore::Open(options);
  ASSERT_TRUE(store.ok());

  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  config.operators = OperatorSet::AggregatesOnly();
  config.arrival_model = ArrivalModel::kPoisson;
  config.raw_threshold = 16;
  StreamId sid = *(*store)->CreateStream(std::move(config));

  MemoryBackend enum_kv;
  EnumStore exact(1, &enum_kv, 512);

  SyntheticStreamSpec spec;
  spec.arrival = ArrivalKind::kPoisson;
  spec.mean_interarrival = 2.0;
  spec.value_universe = 100;
  spec.seed = 31;
  SyntheticStream gen(spec);
  Timestamp horizon = 0;
  for (int i = 0; i < 50000; ++i) {
    Event e = gen.Next();
    ASSERT_TRUE((*store)->Append(sid, e.ts, e.value).ok());
    ASSERT_TRUE(exact.Append(e.ts, e.value).ok());
    horizon = e.ts;
  }

  Rng rng(32);
  int acceptable = 0;
  int trials = 60;
  for (int i = 0; i < trials; ++i) {
    Timestamp lo = static_cast<Timestamp>(rng.NextBounded(static_cast<uint64_t>(horizon / 2)));
    Timestamp hi = lo + static_cast<Timestamp>(rng.NextBounded(static_cast<uint64_t>(horizon / 2)))
                   + 100;
    QuerySpec count_spec{.t1 = lo, .t2 = hi, .op = QueryOp::kCount};
    auto approx = (*store)->Query(sid, count_spec);
    ASSERT_TRUE(approx.ok());
    double truth = *exact.QueryCount(lo, hi);
    double rel_err = truth > 0 ? std::abs(approx->estimate - truth) / truth : 0.0;
    if (rel_err < 0.05 || std::abs(approx->estimate - truth) < 10) {
      ++acceptable;
    }
  }
  // The paper reports 95%-ile error below 5% at 100x; allow margin on the
  // small scale of this test.
  EXPECT_GE(acceptable, trials * 85 / 100);
}

TEST_F(IntegrationTest, DurableAcrossReopenWithLsmBackend) {
  StreamId sid;
  double before;
  {
    StoreOptions options;
    options.dir = dir_;
    options.lsm.memtable_bytes = 64 << 10;  // force real SSTable churn
    auto store = SummaryStore::Open(options);
    StreamConfig config;
    config.decay = std::make_shared<ExponentialDecay>(2.0, 4, 1);
    config.operators = OperatorSet::Microbench();
    config.operators.cms_width = 128;
    config.raw_threshold = 8;
    sid = *(*store)->CreateStream(std::move(config));
    for (Timestamp t = 1; t <= 20000; ++t) {
      ASSERT_TRUE((*store)->Append(sid, t, static_cast<double>(t % 25)).ok());
    }
    QuerySpec spec{.t1 = 5000, .t2 = 15000, .op = QueryOp::kSum};
    before = (*store)->Query(sid, spec)->estimate;
    ASSERT_TRUE((*store)->Flush().ok());
  }
  StoreOptions options;
  options.dir = dir_;
  auto store = SummaryStore::Open(options);
  ASSERT_TRUE(store.ok());
  QuerySpec spec{.t1 = 5000, .t2 = 15000, .op = QueryOp::kSum};
  auto after = (*store)->Query(sid, spec);
  ASSERT_TRUE(after.ok());
  EXPECT_NEAR(after->estimate, before, std::abs(before) * 0.01 + 1);
}

TEST_F(IntegrationTest, LandmarksPreserveOutliersUnderDecay) {
  // The §7.1.2 pipeline: cluster trace with 3σ landmark policy. Outlier
  // detection over a decayed reconstruction must beat summary-only.
  StoreOptions options;
  auto store = SummaryStore::Open(options);

  auto make_config = [] {
    StreamConfig config;
    config.decay = std::make_shared<PowerLawDecay>(1, 2, 5, 1);  // aggressive decay
    config.operators = OperatorSet::AggregatesOnly();
    config.operators.reservoir = true;
    config.operators.reservoir_capacity = 8;
    config.raw_threshold = 8;
    return config;
  };
  StreamId with_lm = *(*store)->CreateStream(make_config());
  StreamId without_lm = *(*store)->CreateStream(make_config());

  ClusterTraceGenerator gen(60, 0.004, 77);
  ThreeSigmaPolicy policy(3.0, 200);
  std::vector<Event> ground_truth;
  Timestamp t_end = 0;
  for (int i = 0; i < 40000; ++i) {
    Event e = gen.Next();
    ground_truth.push_back(e);
    t_end = e.ts + 1;
    bool anomalous = policy.Observe(e.value);
    if (anomalous) {
      // Wrap the anomaly in a short landmark window.
      ASSERT_TRUE((*store)->BeginLandmark(with_lm, e.ts).ok());
      ASSERT_TRUE((*store)->Append(with_lm, e.ts, e.value).ok());
      ASSERT_TRUE((*store)->EndLandmark(with_lm, e.ts).ok());
    } else {
      ASSERT_TRUE((*store)->Append(with_lm, e.ts, e.value).ok());
    }
    ASSERT_TRUE((*store)->Append(without_lm, e.ts, e.value).ok());
  }

  Timestamp interval = 3600;
  OutlierReport truth = DetectOutliers(ground_truth, 0, t_end, interval);
  ASSERT_GT(truth.flagged, 10u);

  auto stream_lm = *(*store)->GetStream(with_lm);
  auto stream_no = *(*store)->GetStream(without_lm);
  auto samples_lm = ReconstructSamples(*stream_lm, 0, t_end);
  auto samples_no = ReconstructSamples(*stream_no, 0, t_end);
  ASSERT_TRUE(samples_lm.ok());
  ASSERT_TRUE(samples_no.ok());

  OutlierReport report_lm = DetectOutliers(*samples_lm, 0, t_end, interval);
  OutlierReport report_no = DetectOutliers(*samples_no, 0, t_end, interval);
  OutlierAccuracy acc_lm = CompareOutlierReports(truth, report_lm);
  OutlierAccuracy acc_no = CompareOutlierReports(truth, report_no);

  // Landmarks must recover strictly more of the true outliers.
  EXPECT_GT(acc_lm.true_positives, acc_no.true_positives);
  EXPECT_LT(acc_lm.false_negatives, acc_no.false_negatives);
}

TEST_F(IntegrationTest, MLabFrequencyQueriesThroughFullStack) {
  StoreOptions options;
  auto store = SummaryStore::Open(options);
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 4, 1);  // the §7.4 5x setup
  config.operators = OperatorSet::Microbench();
  config.operators.cms_width = 1000;
  config.arrival_model = ArrivalModel::kPoisson;
  config.raw_threshold = 16;
  StreamId sid = *(*store)->CreateStream(std::move(config));

  MLabTraceGenerator gen(1.0, 5000, 1.1, 55);
  std::map<int64_t, int> truth;
  Timestamp horizon = 0;
  for (int i = 0; i < 60000; ++i) {
    Event e = gen.Next();
    ++truth[static_cast<int64_t>(e.value)];
    ASSERT_TRUE((*store)->Append(sid, e.ts, e.value).ok());
    horizon = e.ts;
  }
  // Top-ranked IPs: full-range frequency should track truth closely.
  for (int64_t rank = 1; rank <= 10; ++rank) {
    QuerySpec spec{.t1 = 0, .t2 = horizon, .op = QueryOp::kFrequency,
                   .value = static_cast<double>(rank)};
    auto result = (*store)->Query(sid, spec);
    ASSERT_TRUE(result.ok());
    double actual = truth[rank];
    EXPECT_NEAR(result->estimate, actual, actual * 0.2 + 100) << "rank " << rank;
  }
}

}  // namespace
}  // namespace ss
