// The benchmark harness's own instruments must be trustworthy: the exact
// oracle, percentile helper, and (age, length) query sampler.
#include <gtest/gtest.h>

#include "bench/bench_util.h"

namespace ss::bench {
namespace {

TEST(Oracle, CountSumFrequencyExistence) {
  Oracle oracle;
  // ts: 10, 20, 20, 30; values 1, 2, 2, 3.
  oracle.Add({10, 1.0});
  oracle.Add({20, 2.0});
  oracle.Add({20, 2.0});
  oracle.Add({30, 3.0});
  EXPECT_DOUBLE_EQ(oracle.Count(10, 30), 4.0);
  EXPECT_DOUBLE_EQ(oracle.Count(11, 29), 2.0);
  EXPECT_DOUBLE_EQ(oracle.Count(20, 20), 2.0);  // inclusive, duplicates
  EXPECT_DOUBLE_EQ(oracle.Count(31, 40), 0.0);
  EXPECT_DOUBLE_EQ(oracle.Sum(10, 30), 8.0);
  EXPECT_DOUBLE_EQ(oracle.Sum(15, 25), 4.0);
  EXPECT_DOUBLE_EQ(oracle.Frequency(2.0, 10, 30), 2.0);
  EXPECT_DOUBLE_EQ(oracle.Frequency(2.0, 25, 30), 0.0);
  EXPECT_TRUE(oracle.Exists(3.0, 30, 30));
  EXPECT_FALSE(oracle.Exists(3.0, 10, 29));
  EXPECT_FALSE(oracle.Exists(9.0, 0, 100));
}

TEST(Oracle, AgreesWithBruteForceOnRandomStream) {
  Oracle oracle;
  std::vector<Event> events;
  Rng rng(3);
  Timestamp t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += 1 + static_cast<Timestamp>(rng.NextBounded(5));
    Event e{t, static_cast<double>(rng.NextBounded(20))};
    events.push_back(e);
    oracle.Add(e);
  }
  for (int trial = 0; trial < 50; ++trial) {
    Timestamp t1 = static_cast<Timestamp>(rng.NextBounded(static_cast<uint64_t>(t)));
    Timestamp t2 = t1 + static_cast<Timestamp>(rng.NextBounded(3000));
    double count = 0;
    double sum = 0;
    for (const Event& e : events) {
      if (e.ts >= t1 && e.ts <= t2) {
        ++count;
        sum += e.value;
      }
    }
    EXPECT_DOUBLE_EQ(oracle.Count(t1, t2), count);
    EXPECT_DOUBLE_EQ(oracle.Sum(t1, t2), sum);
  }
}

TEST(Percentile, InterpolatesAndHandlesEdges) {
  std::vector<double> values = {4, 1, 3, 2, 5};
  EXPECT_DOUBLE_EQ(Percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 12.5), 1.5);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 95), 7.0);
}

TEST(SampleQueryRange, RespectsClassGeometry) {
  Rng rng(5);
  Timestamp now = kYear;
  for (int ai = 0; ai < 4; ++ai) {
    for (int li = 0; li < 4; ++li) {
      for (int trial = 0; trial < 50; ++trial) {
        Timestamp t1;
        Timestamp t2;
        if (!SampleQueryRange(rng, now, 0, ai, li, &t1, &t2)) {
          continue;
        }
        Timestamp age = now - t2;
        Timestamp len = t2 - t1;
        EXPECT_GE(age, kClassUnits[ai]);
        EXPECT_LT(age, 2 * kClassUnits[ai]);
        EXPECT_GE(len, kClassUnits[li]);
        EXPECT_LT(len, 2 * kClassUnits[li]);
        EXPECT_GE(t1, 0);
      }
    }
  }
}

TEST(RelativeErrorMetric, ZeroTruthFallsBackToMagnitude) {
  EXPECT_DOUBLE_EQ(RelativeError(110, 100), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(90, 100), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(7, 0), 7.0);
  EXPECT_DOUBLE_EQ(RelativeError(0, 0), 0.0);
}

}  // namespace
}  // namespace ss::bench
