// Durability/consistency torture: a random interleaving of appends,
// flushes, evictions, cache drops, landmarks and store reopens must never
// change what queries see. Count/sum answers are compared against an exact
// oracle after every perturbation — full-range queries must stay exact,
// sub-range queries must stay inside their own confidence intervals.
#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "src/core/summary_store.h"
#include "src/workload/generators.h"

namespace ss {
namespace {

using bench::Oracle;

class TortureTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ss_torture_" + std::to_string(GetParam()) + "_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  }
  void TearDown() override { ASSERT_TRUE(RemoveDirRecursive(dir_).ok()); }

  StoreOptions Options() {
    StoreOptions options;
    options.dir = dir_;
    options.lsm.memtable_bytes = 32 << 10;  // force real storage churn
    return options;
  }

  std::string dir_;
};

TEST_P(TortureTest, RandomOpInterleavingsPreserveAnswers) {
  uint64_t seed = 1000 + static_cast<uint64_t>(GetParam());
  Rng rng(seed);

  auto store = SummaryStore::Open(Options());
  ASSERT_TRUE(store.ok());
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 2, 1);
  config.operators = OperatorSet::Microbench();
  config.operators.cms_width = 128;
  config.raw_threshold = 8;
  config.seed = seed;
  StreamId sid = *(*store)->CreateStream(std::move(config));

  Oracle oracle;
  SyntheticStreamSpec spec;
  spec.arrival = ArrivalKind::kPoisson;
  spec.mean_interarrival = 3.0;
  spec.seed = seed ^ 0xabc;
  SyntheticStream gen(spec);
  bool in_landmark = false;
  int landmarks_opened = 0;

  auto check = [&] {
    if (oracle.size() < 10) {
      return;
    }
    // Full range: exact (summaries + landmarks weave seamlessly).
    QuerySpec full{.t1 = oracle.first_ts(), .t2 = oracle.last_ts(), .op = QueryOp::kCount};
    auto count = (*store)->Query(sid, full);
    ASSERT_TRUE(count.ok());
    ASSERT_DOUBLE_EQ(count->estimate, oracle.Count(full.t1, full.t2));
    full.op = QueryOp::kSum;
    auto sum = (*store)->Query(sid, full);
    ASSERT_TRUE(sum.ok());
    ASSERT_NEAR(sum->estimate, oracle.Sum(full.t1, full.t2), 1e-6);
    // Random sub-range: truth within the CI (with a whisker of slack for
    // the boundary-straddling estimate).
    Timestamp span = oracle.last_ts() - oracle.first_ts();
    Timestamp t1 = oracle.first_ts() +
                   static_cast<Timestamp>(rng.NextBounded(static_cast<uint64_t>(span / 2 + 1)));
    Timestamp t2 = t1 + 1 + static_cast<Timestamp>(
                                rng.NextBounded(static_cast<uint64_t>(span / 2 + 1)));
    QuerySpec sub{.t1 = t1, .t2 = t2, .op = QueryOp::kCount, .confidence = 0.999};
    auto sub_count = (*store)->Query(sid, sub);
    ASSERT_TRUE(sub_count.ok());
    double truth = oracle.Count(t1, t2);
    double slack = 3.0 + truth * 0.02;
    EXPECT_GE(truth, sub_count->ci_lo - slack);
    EXPECT_LE(truth, sub_count->ci_hi + slack);
  };

  for (int step = 0; step < 1200; ++step) {
    uint64_t dice = rng.NextBounded(100);
    if (dice < 78) {  // append
      Event e = gen.Next();
      oracle.Add(e);
      ASSERT_TRUE((*store)->Append(sid, e.ts, e.value).ok());
    } else if (dice < 82 && !in_landmark && oracle.size() > 0) {  // open landmark
      ASSERT_TRUE((*store)->BeginLandmark(sid, oracle.last_ts()).ok());
      in_landmark = true;
      ++landmarks_opened;
    } else if (dice < 86 && in_landmark) {  // close landmark
      ASSERT_TRUE((*store)->EndLandmark(sid, oracle.last_ts()).ok());
      in_landmark = false;
    } else if (dice < 90) {  // flush
      ASSERT_TRUE((*store)->Flush().ok());
    } else if (dice < 93) {  // evict payloads
      ASSERT_TRUE((*store)->EvictAll().ok());
    } else if (dice < 96) {  // drop caches
      (*store)->DropCaches();
    } else {  // reopen the whole store
      ASSERT_TRUE((*store)->Flush().ok());
      store = SummaryStore::Open(Options());
      ASSERT_TRUE(store.ok());
      in_landmark = (*(*store)->GetStream(sid))->in_landmark();
    }
    if (step % 60 == 59) {
      check();
    }
  }
  check();
  EXPECT_GT(oracle.size(), 500u);
  EXPECT_GT(landmarks_opened, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace ss
