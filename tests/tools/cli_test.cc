#include <gtest/gtest.h>

#include "tools/cli.h"

namespace ss {
namespace {

TEST(ParseDecaySpec, PowerLaw) {
  auto decay = ParseDecaySpec("powerlaw(1,1,16,1)");
  ASSERT_TRUE(decay.ok());
  EXPECT_EQ((*decay)->Describe(), "PowerLaw(1,1,16,1)");
  EXPECT_TRUE(ParseDecaySpec("PL(1, 2, 5, 1)").ok());  // alias + spaces
}

TEST(ParseDecaySpec, Exponential) {
  auto decay = ParseDecaySpec("exponential(2,1,1)");
  ASSERT_TRUE(decay.ok());
  EXPECT_EQ((*decay)->WindowLength(3), 8u);
  EXPECT_TRUE(ParseDecaySpec("exp(2.5,4,2)").ok());
}

TEST(ParseDecaySpec, Uniform) {
  auto decay = ParseDecaySpec("uniform(64)");
  ASSERT_TRUE(decay.ok());
  EXPECT_EQ((*decay)->WindowLength(100), 64u);
}

TEST(ParseDecaySpec, Rejections) {
  EXPECT_FALSE(ParseDecaySpec("powerlaw(0,1,1,1)").ok());   // p < 1
  EXPECT_FALSE(ParseDecaySpec("powerlaw(1,1,1)").ok());     // arity
  EXPECT_FALSE(ParseDecaySpec("exponential(1,1,1)").ok());  // b <= 1
  EXPECT_FALSE(ParseDecaySpec("uniform(0)").ok());
  EXPECT_FALSE(ParseDecaySpec("linear(1)").ok());
  EXPECT_FALSE(ParseDecaySpec("powerlaw(1,1,1,1").ok());    // missing paren
  EXPECT_FALSE(ParseDecaySpec("powerlaw(1,x,1,1)").ok());   // not a number
}

TEST(ParseOperatorSpec, AllNames) {
  EXPECT_TRUE(ParseOperatorSpec("agg").ok());
  EXPECT_TRUE(ParseOperatorSpec("micro").ok());
  auto full = ParseOperatorSpec("FULL");
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->bloom);
  EXPECT_TRUE(full->reservoir);
  EXPECT_FALSE(ParseOperatorSpec("everything").ok());
}

TEST(ParseQueryOp, AllNamesAndAliases) {
  EXPECT_EQ(*ParseQueryOp("count"), QueryOp::kCount);
  EXPECT_EQ(*ParseQueryOp("SUM"), QueryOp::kSum);
  EXPECT_EQ(*ParseQueryOp("avg"), QueryOp::kMean);
  EXPECT_EQ(*ParseQueryOp("exists"), QueryOp::kExistence);
  EXPECT_EQ(*ParseQueryOp("freq"), QueryOp::kFrequency);
  EXPECT_EQ(*ParseQueryOp("percentile"), QueryOp::kQuantile);
  EXPECT_EQ(*ParseQueryOp("range"), QueryOp::kValueRangeCount);
  EXPECT_FALSE(ParseQueryOp("median").ok());
}

TEST(ParseArgs, FlagsAndPositional) {
  const char* argv[] = {"prog", "cmd", "--dir", "/tmp/x", "--stream", "3", "pos1",
                        "--flag=inline"};
  auto args = ParseArgs(8, argv, 2);
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->flags.at("dir"), "/tmp/x");
  EXPECT_EQ(args->flags.at("stream"), "3");
  EXPECT_EQ(args->flags.at("flag"), "inline");
  ASSERT_EQ(args->positional.size(), 1u);
  EXPECT_EQ(args->positional[0], "pos1");
  EXPECT_EQ(args->GetOr("missing", "fallback"), "fallback");
}

TEST(ParseArgs, FlagWithoutValueRejected) {
  const char* argv[] = {"prog", "cmd", "--dir"};
  EXPECT_FALSE(ParseArgs(3, argv, 2).ok());
  const char* argv2[] = {"prog", "cmd", "--a", "--b", "1"};
  EXPECT_FALSE(ParseArgs(5, argv2, 2).ok());
}

TEST(ParseCsvLine, ValidAndInvalid) {
  auto event = ParseCsvLine("123, 4.5");
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(event->ts, 123);
  EXPECT_DOUBLE_EQ(event->value, 4.5);
  EXPECT_EQ(ParseCsvLine("# comment").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ParseCsvLine("").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(ParseCsvLine("123").ok());
  EXPECT_FALSE(ParseCsvLine("abc,1").ok());
  EXPECT_FALSE(ParseCsvLine("1,abc").ok());
  auto negative = ParseCsvLine("-5,-2.5");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(negative->ts, -5);
}

TEST(ParseMetricsJson, FlattensRegistryDocument) {
  // Exactly the shape MetricRegistry::RenderJson emits, including an escaped
  // labeled key and a histogram object to flatten.
  const std::string json =
      "{\n"
      "  \"counters\": {\n"
      "    \"ss_core_append_total\": 42,\n"
      "    \"ss_obs_flight_dump_total\": 1\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"ss_store_stream_count\": 3\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"ss_core_query_phase_us{phase=\\\"plan\\\"}\": {\"count\": 7, \"sum\": 70, "
      "\"mean\": 10.000, \"p50\": 9, \"p95\": 15, \"p99\": 15, \"max\": 16}\n"
      "  }\n"
      "}\n";
  auto parsed = ParseMetricsJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed->at("ss_core_append_total"), 42.0);
  EXPECT_DOUBLE_EQ(parsed->at("ss_obs_flight_dump_total"), 1.0);
  EXPECT_DOUBLE_EQ(parsed->at("ss_store_stream_count"), 3.0);
  EXPECT_DOUBLE_EQ(parsed->at("ss_core_query_phase_us{phase=\"plan\"}.count"), 7.0);
  EXPECT_DOUBLE_EQ(parsed->at("ss_core_query_phase_us{phase=\"plan\"}.mean"), 10.0);
  EXPECT_DOUBLE_EQ(parsed->at("ss_core_query_phase_us{phase=\"plan\"}.max"), 16.0);

  EXPECT_FALSE(ParseMetricsJson("not json at all").ok());
  EXPECT_FALSE(ParseMetricsJson("{}").ok());
}

}  // namespace
}  // namespace ss
