#!/bin/sh
# End-to-end exercise of the sstool CLI against a throwaway durable store.
# Usage: sstool_e2e.sh <path-to-sstool>
set -eu

SSTOOL="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$SSTOOL" create --dir "$DIR/store" --decay 'powerlaw(1,1,1,1)' --ops full --stream 7

# Ingest 1000 events (ts = i, value = i % 10) from stdin.
i=1
while [ $i -le 1000 ]; do
  echo "$i,$((i % 10))"
  i=$((i + 1))
done | "$SSTOOL" ingest --dir "$DIR/store" --stream 7

OUT="$("$SSTOOL" query --dir "$DIR/store" --stream 7 --op count --t1 1 --t2 1000)"
echo "$OUT"
case "$OUT" in
  *"estimate: 1000"*) ;;
  *) echo "FAIL: expected exact count 1000"; exit 1 ;;
esac

OUT="$("$SSTOOL" query --dir "$DIR/store" --stream 7 --op exists --t1 1 --t2 1000 --value 3)"
case "$OUT" in
  *"answer: yes"*) ;;
  *) echo "FAIL: expected membership yes"; exit 1 ;;
esac

# Heavy hitters: values 0..9 are uniform (100 each); the ranked list must
# have 3 entries with sound brackets.
OUT="$("$SSTOOL" query --dir "$DIR/store" --stream 7 --op topk --k 3 --t1 1 --t2 1000)"
echo "$OUT"
case "$OUT" in
  *"#3 value="*) ;;
  *) echo "FAIL: expected 3 top-k entries"; exit 1 ;;
esac

# --explain prints the per-query trace with its accounting lines.
OUT="$("$SSTOOL" query --dir "$DIR/store" --stream 7 --op count --t1 1 --t2 1000 --explain)"
echo "$OUT"
for want in "windows scanned" "bytes read" "window cache" "block cache"; do
  case "$OUT" in
    *"$want"*) ;;
    *) echo "FAIL: --explain output missing '$want'"; exit 1 ;;
  esac
done

# stats dumps the metric registry plus store-level gauges, in both formats.
OUT="$("$SSTOOL" stats --dir "$DIR/store")"
case "$OUT" in
  *"ss_store_streams 1"*) ;;
  *) echo "FAIL: stats missing ss_store_streams gauge"; echo "$OUT"; exit 1 ;;
esac
case "$OUT" in
  *"# TYPE"*) ;;
  *) echo "FAIL: stats not in Prometheus text format"; exit 1 ;;
esac
OUT="$("$SSTOOL" stats --dir "$DIR/store" --format json)"
case "$OUT" in
  *'"gauges"'*) ;;
  *) echo "FAIL: stats --format json missing gauges object"; exit 1 ;;
esac

# Scrub: a clean store reports zero errors in both dry-run and repair mode.
OUT="$("$SSTOOL" scrub --dir "$DIR/store" --dry-run)"
echo "$OUT"
case "$OUT" in
  *"scrub (dry-run):"*) ;;
  *) echo "FAIL: scrub --dry-run missing report line"; exit 1 ;;
esac
case "$OUT" in
  *"0 errors, 0 quarantined"*) ;;
  *) echo "FAIL: scrub of a clean store reported errors"; exit 1 ;;
esac
OUT="$("$SSTOOL" scrub --dir "$DIR/store")"
case "$OUT" in
  *"scrub:"*"0 errors"*) ;;
  *) echo "FAIL: scrub repair pass on clean store"; exit 1 ;;
esac

# Landmark round trip.
"$SSTOOL" landmark --dir "$DIR/store" --stream 7 --begin 1001
echo "1001,999" | "$SSTOOL" ingest --dir "$DIR/store" --stream 7
"$SSTOOL" landmark --dir "$DIR/store" --stream 7 --end 1001
OUT="$("$SSTOOL" query --dir "$DIR/store" --stream 7 --op max --t1 1 --t2 1001)"
case "$OUT" in
  *"estimate: 999"*) ;;
  *) echo "FAIL: expected landmark max 999"; exit 1 ;;
esac

"$SSTOOL" info --dir "$DIR/store" | grep -q "PowerLaw(1,1,1,1)"
"$SSTOOL" delete --dir "$DIR/store" --stream 7
if "$SSTOOL" info --dir "$DIR/store" | grep -q "^ *7 "; then
  echo "FAIL: stream 7 still listed after delete"
  exit 1
fi

echo "sstool e2e: OK"
