#!/bin/sh
# Server smoke test: boot sserver on a loopback ephemeral port, drive it
# end-to-end with sstool --connect, then verify a clean SIGTERM shutdown and
# that the ingested data is durable in the store directory afterwards.
# Usage: sserver_smoke.sh <path-to-sserver> <path-to-sstool>
set -eu

SSERVER="$1"
SSTOOL="$2"
DIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -KILL "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$DIR"
}
trap cleanup EXIT

# --drain-grace-ms keeps the server answering health probes as "draining"
# for a window after SIGTERM, which the shutdown leg below asserts.
"$SSERVER" --dir "$DIR/store" --port 0 --drain-grace-ms 2000 > "$DIR/server.log" 2>&1 &
SERVER_PID=$!

# Wait for the listen banner (the port is ephemeral, so parse it back out).
i=0
while ! grep -q "listening on" "$DIR/server.log" 2>/dev/null; do
  i=$((i + 1))
  if [ $i -gt 100 ]; then
    echo "FAIL: sserver never reported listening"; cat "$DIR/server.log"; exit 1
  fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: sserver exited during startup"; cat "$DIR/server.log"; exit 1
  fi
  sleep 0.1
done
ADDR="$(sed -n 's/.*listening on \([0-9.]*:[0-9]*\).*/\1/p' "$DIR/server.log" | head -1)"
echo "sserver up at $ADDR (pid $SERVER_PID)"

# Health probe: a fresh server answers "ok" with exit 0.
OUT="$("$SSTOOL" ping --connect "$ADDR")"
case "$OUT" in
  ok) ;;
  *) echo "FAIL: expected health 'ok' from a fresh server, got '$OUT'"; exit 1 ;;
esac

# Every store subcommand over the wire.
"$SSTOOL" create --connect "$ADDR" --decay 'powerlaw(1,1,1,1)' --ops full --stream 7

i=1
while [ $i -le 500 ]; do
  echo "$i,$((i % 10))"
  i=$((i + 1))
done | "$SSTOOL" ingest --connect "$ADDR" --stream 7

OUT="$("$SSTOOL" query --connect "$ADDR" --stream 7 --op count --t1 1 --t2 500)"
echo "$OUT"
case "$OUT" in
  *"estimate: 500"*) ;;
  *) echo "FAIL: expected exact remote count 500"; exit 1 ;;
esac

# Remote --explain ships the server-rendered query trace.
OUT="$("$SSTOOL" query --connect "$ADDR" --stream 7 --op count --t1 1 --t2 500 --explain)"
case "$OUT" in
  *"windows scanned"*) ;;
  *) echo "FAIL: remote --explain missing trace"; echo "$OUT"; exit 1 ;;
esac

"$SSTOOL" info --connect "$ADDR" | grep -q "PowerLaw(1,1,1,1)" || {
  echo "FAIL: remote info missing stream row"; exit 1
}

OUT="$("$SSTOOL" stats --connect "$ADDR")"
case "$OUT" in
  *"ss_net_requests_total"*) ;;
  *) echo "FAIL: remote stats missing ss_net metrics"; echo "$OUT"; exit 1 ;;
esac

OUT="$("$SSTOOL" scrub --connect "$ADDR" --dry-run)"
case "$OUT" in
  *"0 errors, 0 quarantined"*) ;;
  *) echo "FAIL: remote scrub on a clean store reported errors"; echo "$OUT"; exit 1 ;;
esac

# Landmark round trip over the wire.
"$SSTOOL" landmark --connect "$ADDR" --stream 7 --begin 501
echo "501,999" | "$SSTOOL" ingest --connect "$ADDR" --stream 7
"$SSTOOL" landmark --connect "$ADDR" --stream 7 --end 501
OUT="$("$SSTOOL" query --connect "$ADDR" --stream 7 --op max --t1 1 --t2 501)"
case "$OUT" in
  *"estimate: 999"*) ;;
  *) echo "FAIL: expected remote landmark max 999"; exit 1 ;;
esac

# Clean shutdown: SIGTERM must drain and exit 0. During the --drain-grace-ms
# window the server keeps serving but the health probe flips to "draining"
# (exit 3), so load balancers pull it before the listener goes away.
kill -TERM "$SERVER_PID"
rc=0
OUT="$("$SSTOOL" ping --connect "$ADDR")" || rc=$?
case "$OUT" in
  draining) ;;
  *) echo "FAIL: expected health 'draining' inside the grace window, got '$OUT'"; exit 1 ;;
esac
if [ "$rc" -ne 3 ]; then
  echo "FAIL: draining probe should exit 3, got $rc"; exit 1
fi
rc=0
wait "$SERVER_PID" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: sserver exited rc=$rc on SIGTERM"; cat "$DIR/server.log"; exit 1
fi
grep -q "draining" "$DIR/server.log" || {
  echo "FAIL: no drain message in server log"; cat "$DIR/server.log"; exit 1
}
SERVER_PID=""

# The data the server ingested must be durable in the store directory.
OUT="$("$SSTOOL" query --dir "$DIR/store" --stream 7 --op count --t1 1 --t2 501)"
case "$OUT" in
  *"estimate: 501"*) ;;
  *) echo "FAIL: store not durable after server shutdown"; echo "$OUT"; exit 1 ;;
esac

# ---------------------------------------------------------------- multi-tenant
# Second leg: boot with --tenants and verify auth, namespace isolation, and a
# typed quota error over the real wire with real processes.
cat > "$DIR/tenants.conf" <<'EOF'
# id name token max_streams max_resident_bytes ingest_events_per_sec
1 acme     acme-secret     2 0 0
2 umbrella umbrella-secret 0 0 0
EOF

"$SSERVER" --dir "$DIR/mtstore" --port 0 --tenants "$DIR/tenants.conf" > "$DIR/mtserver.log" 2>&1 &
SERVER_PID=$!
i=0
while ! grep -q "listening on" "$DIR/mtserver.log" 2>/dev/null; do
  i=$((i + 1))
  if [ $i -gt 100 ]; then
    echo "FAIL: multi-tenant sserver never reported listening"; cat "$DIR/mtserver.log"; exit 1
  fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: multi-tenant sserver exited during startup"; cat "$DIR/mtserver.log"; exit 1
  fi
  sleep 0.1
done
grep -q "multi-tenant mode, 2 tenant(s)" "$DIR/mtserver.log" || {
  echo "FAIL: no multi-tenant banner"; cat "$DIR/mtserver.log"; exit 1
}
MTADDR="$(sed -n 's/.*listening on \([0-9.]*:[0-9]*\).*/\1/p' "$DIR/mtserver.log" | head -1)"
echo "multi-tenant sserver up at $MTADDR (pid $SERVER_PID)"

# No credentials: denied before any request executes.
if "$SSTOOL" create --connect "$MTADDR" --decay 'powerlaw(1,1,1,1)' --stream 7 2>/dev/null; then
  echo "FAIL: unauthenticated create succeeded on a multi-tenant server"; exit 1
fi
# Wrong token: same denial.
if "$SSTOOL" create --connect "$MTADDR" --tenant 1 --token wrong \
    --decay 'powerlaw(1,1,1,1)' --stream 7 2>/dev/null; then
  echo "FAIL: bad-token create succeeded"; exit 1
fi

# Both tenants own a private "stream 7".
"$SSTOOL" create --connect "$MTADDR" --tenant 1 --token acme-secret \
  --decay 'powerlaw(1,1,1,1)' --stream 7
"$SSTOOL" create --connect "$MTADDR" --tenant 2 --token umbrella-secret \
  --decay 'powerlaw(1,1,1,1)' --stream 7
i=1
while [ $i -le 100 ]; do
  echo "$i,1"
  i=$((i + 1))
done | "$SSTOOL" ingest --connect "$MTADDR" --tenant 1 --token acme-secret --stream 7
echo "1,5" | "$SSTOOL" ingest --connect "$MTADDR" --tenant 2 --token umbrella-secret --stream 7

OUT="$("$SSTOOL" query --connect "$MTADDR" --tenant 1 --token acme-secret \
  --stream 7 --op count --t1 1 --t2 100)"
case "$OUT" in
  *"estimate: 100"*) ;;
  *) echo "FAIL: acme expected count 100"; echo "$OUT"; exit 1 ;;
esac
OUT="$("$SSTOOL" query --connect "$MTADDR" --tenant 2 --token umbrella-secret \
  --stream 7 --op count --t1 1 --t2 100)"
case "$OUT" in
  *"estimate: 1"*) ;;
  *) echo "FAIL: umbrella sees acme's events — namespace leak"; echo "$OUT"; exit 1 ;;
esac

# acme's stream quota is 2: the third create must fail with the typed error.
"$SSTOOL" create --connect "$MTADDR" --tenant 1 --token acme-secret \
  --decay 'powerlaw(1,1,1,1)' --stream 8
OUT="$("$SSTOOL" create --connect "$MTADDR" --tenant 1 --token acme-secret \
  --decay 'powerlaw(1,1,1,1)' --stream 9 2>&1 || true)"
case "$OUT" in
  *"stream quota"*) ;;
  *) echo "FAIL: stream quota not enforced: $OUT"; exit 1 ;;
esac

kill -TERM "$SERVER_PID"
rc=0
wait "$SERVER_PID" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "FAIL: multi-tenant sserver exited rc=$rc on SIGTERM"; cat "$DIR/mtserver.log"; exit 1
fi
SERVER_PID=""

echo "sserver smoke: OK"
