// Striped ingest front: the lossless (kBlock) path must deliver every
// offered event into the store regardless of producer count or ring size,
// and the kShed path must keep exact accounting (store count + shed count ==
// offers). The multi-producer stress test is the TSan target for the ring's
// acquire/release publication protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/core/ingest_ring.h"
#include "src/core/summary_store.h"
#include "src/obs/metrics.h"

namespace ss {
namespace {

StreamConfig SmallConfig() {
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  config.operators = OperatorSet::Microbench();
  config.operators.bloom_bits = 256;
  config.operators.cms_width = 64;
  config.raw_threshold = 8;
  return config;
}

// Multi-producer fronts need out-of-order slack: producers stamp events from
// a shared clock, but an event can sit in its ring while newer timestamps
// from faster producers are drained, so the stream's reorder buffer must
// absorb the cross-ring skew (see the IngestFront header contract).
StreamConfig ReorderingConfig(uint64_t slack) {
  StreamConfig config = SmallConfig();
  config.reorder_buffer = slack;
  return config;
}

double CountInStore(SummaryStore& store, StreamId sid, Timestamp t1, Timestamp t2) {
  QuerySpec spec{.t1 = t1, .t2 = t2, .op = QueryOp::kCount};
  auto result = store.Query(sid, spec);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result->estimate : -1.0;
}

TEST(SpscRing, PushPopRoundTrip) {
  SpscRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.TryPush(Event{i + 1, static_cast<double>(i)}));
  }
  EXPECT_FALSE(ring.TryPush(Event{99, 0.0}));  // full
  Event out[8];
  EXPECT_EQ(ring.PopBatch(out, 8), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(out[i].ts, i + 1);
    EXPECT_EQ(out[i].value, static_cast<double>(i));
  }
  EXPECT_EQ(ring.PopBatch(out, 8), 0u);  // empty again
  // Wrap around the cursor a few times.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.TryPush(Event{round * 10 + i, 1.0}));
    }
    ASSERT_EQ(ring.PopBatch(out, 8), 3u);
  }
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(IngestRing, SingleProducerDeliversEverything) {
  auto store = SummaryStore::Open(StoreOptions{});
  ASSERT_TRUE(store.ok());
  auto sid = (*store)->CreateStream(SmallConfig());
  ASSERT_TRUE(sid.ok());
  IngestFront front(**store, *sid);
  IngestFront::Producer* p = front.RegisterProducer();
  ASSERT_NE(p, nullptr);
  constexpr int kEvents = 20000;
  for (int t = 1; t <= kEvents; ++t) {
    ASSERT_TRUE(p->Offer(t, static_cast<double>(t % 10)).ok());
  }
  ASSERT_TRUE(front.Drain().ok());
  front.Stop();
  EXPECT_EQ(front.shed_count(), 0u);
  EXPECT_DOUBLE_EQ(CountInStore(**store, *sid, 1, kEvents), kEvents);
}

TEST(IngestRing, MultiProducerBlockPolicyLossless) {
  auto store = SummaryStore::Open(StoreOptions{});
  auto sid = (*store)->CreateStream(ReorderingConfig(1 << 14));
  // Tiny rings force the block path to actually wait on the worker.
  IngestRingOptions options;
  options.ring_capacity = 64;
  options.drain_batch = 128;
  IngestFront front(**store, *sid, options);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::vector<IngestFront::Producer*> handles;
  for (int i = 0; i < kProducers; ++i) {
    handles.push_back(front.RegisterProducer());
    ASSERT_NE(handles.back(), nullptr);
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  std::atomic<Timestamp> clock{0};
  for (int i = 0; i < kProducers; ++i) {
    threads.emplace_back([&, i] {
      for (int t = 0; t < kPerProducer; ++t) {
        Timestamp ts = clock.fetch_add(1, std::memory_order_relaxed) + 1;
        if (!handles[i]->Offer(ts, static_cast<double>(i)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  ASSERT_TRUE(front.Drain().ok());
  front.Stop();
  // Flush releases events still staged in the stream's reorder buffer.
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(front.shed_count(), 0u);
  EXPECT_DOUBLE_EQ(CountInStore(**store, *sid, 1, kProducers * kPerProducer),
                   kProducers * kPerProducer);
}

TEST(IngestRing, ShedPolicyAccountingInvariant) {
  auto store = SummaryStore::Open(StoreOptions{});
  auto sid = (*store)->CreateStream(SmallConfig());
  IngestRingOptions options;
  options.ring_capacity = 16;  // easy to overrun
  options.policy = IngestRingOptions::Policy::kShed;
  IngestFront front(**store, *sid, options);
  IngestFront::Producer* p = front.RegisterProducer();
  constexpr int kOffers = 20000;
  uint64_t accepted = 0;
  uint64_t shed = 0;
  for (int t = 1; t <= kOffers; ++t) {
    Status s = p->Offer(t, 1.0);
    if (s.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
      ++shed;
    }
  }
  ASSERT_TRUE(front.Drain().ok());
  front.Stop();
  // Exact bookkeeping: every offer either landed in the store or was shed.
  EXPECT_EQ(accepted + shed, kOffers);
  EXPECT_EQ(front.shed_count(), shed);
  EXPECT_DOUBLE_EQ(CountInStore(**store, *sid, 1, kOffers),
                   static_cast<double>(accepted));
}

// Pin: drained/shed accounting is a partition, not a double count. Events in
// a batch whose AppendBatch fails (and everything consumed after the sticky
// failure) are shed; drained counts only store-applied events. The old code
// bumped drained for every consumed batch, so dropped events inflated
// ss_core_ingest_ring_drained_total.
TEST(IngestRing, FailedBatchesCountShedNotDrained) {
  auto store = SummaryStore::Open(StoreOptions{});
  ASSERT_TRUE(store.ok());
  auto sid = (*store)->CreateStream(SmallConfig());
  ASSERT_TRUE(sid.ok());
  IngestFront front(**store, *sid);
  IngestFront::Producer* p = front.RegisterProducer();
  ASSERT_NE(p, nullptr);

  Counter& drained = MetricRegistry::Default().GetCounter("ss_core_ingest_ring_drained_total");
  Counter& shed = MetricRegistry::Default().GetCounter("ss_core_ingest_ring_shed_total");
  const uint64_t drained_before = drained.value();
  const uint64_t shed_before = shed.value();

  // Delete the stream before anything is offered: the first drain's
  // AppendBatch fails (NotFound) and the failure sticks.
  ASSERT_TRUE((*store)->DeleteStream(*sid).ok());
  constexpr uint64_t kEvents = 500;
  for (uint64_t t = 1; t <= kEvents; ++t) {
    ASSERT_TRUE(p->Offer(static_cast<Timestamp>(t), 1.0).ok());
  }
  Status drain_status = front.Drain();
  EXPECT_FALSE(drain_status.ok());  // the sticky failure surfaces
  front.Stop();

  // Every offered event was consumed but none was applied: all shed, none
  // drained.
  EXPECT_EQ(drained.value() - drained_before, 0u);
  EXPECT_EQ(shed.value() - shed_before, kEvents);
  EXPECT_EQ(front.shed_count(), kEvents);
}

TEST(IngestRing, OfferAfterStopFails) {
  auto store = SummaryStore::Open(StoreOptions{});
  auto sid = (*store)->CreateStream(SmallConfig());
  IngestFront front(**store, *sid);
  IngestFront::Producer* p = front.RegisterProducer();
  ASSERT_TRUE(p->Offer(1, 1.0).ok());
  front.Stop();
  front.Stop();  // idempotent
  EXPECT_EQ(p->Offer(2, 2.0).code(), StatusCode::kFailedPrecondition);
  // The pre-Stop event still landed.
  EXPECT_DOUBLE_EQ(CountInStore(**store, *sid, 1, 10), 1.0);
}

TEST(IngestRing, ProducerRegistrationCapped) {
  auto store = SummaryStore::Open(StoreOptions{});
  auto sid = (*store)->CreateStream(SmallConfig());
  IngestRingOptions options;
  options.max_producers = 2;
  IngestFront front(**store, *sid, options);
  EXPECT_NE(front.RegisterProducer(), nullptr);
  EXPECT_NE(front.RegisterProducer(), nullptr);
  EXPECT_EQ(front.RegisterProducer(), nullptr);
  front.Stop();
}

// TSan leg target: concurrent producers + the drain worker + a reader issuing
// queries mid-ingest. Asserts only thread-safety and final delivery (query
// results mid-stream are time-dependent).
TEST(IngestRing, ConcurrentProducersAndQueriesStress) {
  auto store = SummaryStore::Open(StoreOptions{});
  auto sid = (*store)->CreateStream(ReorderingConfig(1 << 14));
  IngestRingOptions options;
  options.ring_capacity = 128;
  IngestFront front(**store, *sid, options);
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 3000;
  std::vector<IngestFront::Producer*> handles;
  for (int i = 0; i < kProducers; ++i) {
    handles.push_back(front.RegisterProducer());
  }
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      QuerySpec spec{.t1 = 1, .t2 = kProducers * kPerProducer, .op = QueryOp::kCount};
      auto result = (*store)->Query(*sid, spec);
      // NotFound is fine before the first drain lands; anything else is not.
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
      }
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> threads;
  std::atomic<Timestamp> clock{0};
  for (int i = 0; i < kProducers; ++i) {
    threads.emplace_back([&, i] {
      for (int t = 0; t < kPerProducer; ++t) {
        Timestamp ts = clock.fetch_add(1, std::memory_order_relaxed) + 1;
        ASSERT_TRUE(handles[i]->Offer(ts, static_cast<double>(t % 7)).ok());
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  Status drained = front.Drain();
  done.store(true, std::memory_order_release);
  reader.join();
  front.Stop();
  ASSERT_TRUE(drained.ok()) << drained.ToString();
  ASSERT_TRUE((*store)->Flush().ok());
  EXPECT_DOUBLE_EQ(CountInStore(**store, *sid, 1, kProducers * kPerProducer),
                   kProducers * kPerProducer);
}

}  // namespace
}  // namespace ss
