#include <gtest/gtest.h>

#include "src/core/window.h"
#include "src/sketch/aggregates.h"
#include "src/sketch/bloom.h"

namespace ss {
namespace {

OperatorSet MicroOps() {
  OperatorSet ops = OperatorSet::Microbench();
  ops.bloom_bits = 256;
  ops.cms_width = 64;
  return ops;
}

TEST(SummaryWindow, SingleElementConstruction) {
  SummaryWindow window(5, 1000, 3.5);
  EXPECT_EQ(window.cs(), 5u);
  EXPECT_EQ(window.ce(), 5u);
  EXPECT_EQ(window.ts_start(), 1000);
  EXPECT_EQ(window.ts_last(), 1000);
  EXPECT_TRUE(window.is_raw());
  EXPECT_EQ(window.element_count(), 1u);
  ASSERT_EQ(window.raw().size(), 1u);
  EXPECT_EQ(window.raw()[0].value, 3.5);
}

TEST(SummaryWindow, AppendExtends) {
  SummaryWindow window(1, 10, 1.0);
  window.Append(2, 20, 2.0);
  window.Append(3, 30, 3.0);
  EXPECT_EQ(window.ce(), 3u);
  EXPECT_EQ(window.ts_last(), 30);
  EXPECT_EQ(window.raw().size(), 3u);
}

TEST(SummaryWindow, MaterializeBuildsSummaries) {
  SummaryWindow window(1, 10, 1.0);
  window.Append(2, 20, 2.0);
  window.Append(3, 30, 4.0);
  window.Materialize(MicroOps(), 1);
  EXPECT_FALSE(window.is_raw());
  EXPECT_TRUE(window.raw().empty());
  const auto* count = SummaryCast<CountSummary>(window.Find(SummaryKind::kCount));
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->count(), 3u);
  const auto* sum = SummaryCast<SumSummary>(window.Find(SummaryKind::kSum));
  EXPECT_DOUBLE_EQ(sum->sum(), 7.0);
  const auto* bloom = SummaryCast<BloomFilter>(window.Find(SummaryKind::kBloom));
  EXPECT_TRUE(bloom->MightContain(4.0));
}

TEST(SummaryWindow, MergeRawStaysRawUnderThreshold) {
  SummaryWindow a(1, 10, 1.0);
  SummaryWindow b(2, 20, 2.0);
  ASSERT_TRUE(a.MergeFrom(std::move(b), MicroOps(), /*raw_threshold=*/4, 1).ok());
  EXPECT_TRUE(a.is_raw());
  EXPECT_EQ(a.ce(), 2u);
  EXPECT_EQ(a.raw().size(), 2u);
}

TEST(SummaryWindow, MergeMaterializesPastThreshold) {
  SummaryWindow a(1, 10, 1.0);
  a.Append(2, 20, 2.0);
  SummaryWindow b(3, 30, 3.0);
  ASSERT_TRUE(a.MergeFrom(std::move(b), MicroOps(), /*raw_threshold=*/2, 1).ok());
  EXPECT_FALSE(a.is_raw());
  const auto* count = SummaryCast<CountSummary>(a.Find(SummaryKind::kCount));
  EXPECT_EQ(count->count(), 3u);
}

TEST(SummaryWindow, MergeSketchWithRaw) {
  SummaryWindow a(1, 10, 1.0);
  a.Materialize(MicroOps(), 1);
  SummaryWindow b(2, 20, 5.0);
  ASSERT_TRUE(a.MergeFrom(std::move(b), MicroOps(), 100, 1).ok());
  EXPECT_FALSE(a.is_raw());
  const auto* sum = SummaryCast<SumSummary>(a.Find(SummaryKind::kSum));
  EXPECT_DOUBLE_EQ(sum->sum(), 6.0);
}

TEST(SummaryWindow, MergeNonAdjacentRejected) {
  SummaryWindow a(1, 10, 1.0);
  SummaryWindow b(3, 30, 3.0);
  EXPECT_EQ(a.MergeFrom(std::move(b), MicroOps(), 4, 1).code(), StatusCode::kInvalidArgument);
}

TEST(SummaryWindow, SerdeRoundTripRaw) {
  SummaryWindow window(10, 100, 1.5);
  window.Append(11, 110, 2.5);
  Writer w;
  window.Serialize(w);
  Reader r(w.data());
  auto restored = SummaryWindow::Deserialize(r);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->cs(), 10u);
  EXPECT_EQ(restored->ce(), 11u);
  EXPECT_TRUE(restored->is_raw());
  ASSERT_EQ(restored->raw().size(), 2u);
  EXPECT_EQ(restored->raw()[1].ts, 110);
  EXPECT_EQ(restored->raw()[1].value, 2.5);
}

TEST(SummaryWindow, SerdeRoundTripMaterialized) {
  SummaryWindow window(1, 10, 1.0);
  for (uint64_t i = 2; i <= 20; ++i) {
    window.Append(i, static_cast<Timestamp>(i * 10), static_cast<double>(i));
  }
  window.Materialize(MicroOps(), 99);
  Writer w;
  window.Serialize(w);
  Reader r(w.data());
  auto restored = SummaryWindow::Deserialize(r);
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(restored->is_raw());
  const auto* count = SummaryCast<CountSummary>(restored->Find(SummaryKind::kCount));
  EXPECT_EQ(count->count(), 20u);
  const auto* sum = SummaryCast<SumSummary>(restored->Find(SummaryKind::kSum));
  EXPECT_DOUBLE_EQ(sum->sum(), 210.0);
}

TEST(LandmarkWindow, SerdeRoundTrip) {
  LandmarkWindow lm;
  lm.id = 3;
  lm.ts_start = 50;
  lm.ts_end = 90;
  lm.closed = true;
  lm.events = {{55, 1.0}, {60, 2.0}, {90, 3.0}};
  Writer w;
  lm.Serialize(w);
  Reader r(w.data());
  auto restored = LandmarkWindow::Deserialize(r);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->id, 3u);
  EXPECT_EQ(restored->ts_start, 50);
  EXPECT_EQ(restored->ts_end, 90);
  EXPECT_TRUE(restored->closed);
  ASSERT_EQ(restored->events.size(), 3u);
  EXPECT_EQ(restored->events[2].ts, 90);
}

TEST(SummaryWindow, SizeBytesReflectsRepresentation) {
  SummaryWindow raw(1, 10, 1.0);
  size_t raw_size = raw.SizeBytes();
  SummaryWindow big(1, 10, 1.0);
  for (uint64_t i = 2; i <= 100; ++i) {
    big.Append(i, static_cast<Timestamp>(i), 1.0);
  }
  EXPECT_GT(big.SizeBytes(), raw_size);
  size_t before = big.SizeBytes();
  OperatorSet aggregates = OperatorSet::AggregatesOnly();
  big.Materialize(aggregates, 1);
  // 100 raw events (1600B) collapse into three small aggregates.
  EXPECT_LT(big.SizeBytes(), before);
}

}  // namespace
}  // namespace ss
