#include <gtest/gtest.h>

#include <cmath>

#include "src/core/summary_store.h"
#include "src/storage/file_util.h"

namespace ss {
namespace {

StreamConfig SmallConfig() {
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  config.operators = OperatorSet::Microbench();
  config.operators.bloom_bits = 256;
  config.operators.cms_width = 64;
  config.raw_threshold = 8;
  return config;
}

TEST(SummaryStoreApi, CreateAppendQueryInMemory) {
  auto store = SummaryStore::Open(StoreOptions{});
  ASSERT_TRUE(store.ok());
  auto sid = (*store)->CreateStream(SmallConfig());
  ASSERT_TRUE(sid.ok());
  for (int t = 1; t <= 500; ++t) {
    ASSERT_TRUE((*store)->Append(*sid, t, static_cast<double>(t % 10)).ok());
  }
  QuerySpec spec{.t1 = 1, .t2 = 500, .op = QueryOp::kCount};
  auto result = (*store)->Query(*sid, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->estimate, 500.0);
}

TEST(SummaryStoreApi, MultipleIndependentStreams) {
  auto store = SummaryStore::Open(StoreOptions{});
  auto a = (*store)->CreateStream(SmallConfig());
  auto b = (*store)->CreateStream(SmallConfig());
  ASSERT_NE(*a, *b);
  for (int t = 1; t <= 100; ++t) {
    ASSERT_TRUE((*store)->Append(*a, t, 1.0).ok());
  }
  for (int t = 1; t <= 50; ++t) {
    ASSERT_TRUE((*store)->Append(*b, t, 2.0).ok());
  }
  QuerySpec spec{.t1 = 1, .t2 = 1000, .op = QueryOp::kSum};
  EXPECT_DOUBLE_EQ((*store)->Query(*a, spec)->estimate, 100.0);
  EXPECT_DOUBLE_EQ((*store)->Query(*b, spec)->estimate, 100.0);
  EXPECT_EQ((*store)->ListStreams().size(), 2u);
}

TEST(SummaryStoreApi, UnknownStreamErrors) {
  auto store = SummaryStore::Open(StoreOptions{});
  EXPECT_EQ((*store)->Append(99, 1, 1.0).code(), StatusCode::kNotFound);
  QuerySpec spec{.t1 = 0, .t2 = 1, .op = QueryOp::kCount};
  EXPECT_EQ((*store)->Query(99, spec).status().code(), StatusCode::kNotFound);
}

TEST(SummaryStoreApi, DeleteStreamRemovesData) {
  auto store = SummaryStore::Open(StoreOptions{});
  auto sid = (*store)->CreateStream(SmallConfig());
  for (int t = 1; t <= 100; ++t) {
    ASSERT_TRUE((*store)->Append(*sid, t, 1.0).ok());
  }
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_TRUE((*store)->DeleteStream(*sid).ok());
  EXPECT_TRUE((*store)->ListStreams().empty());
  EXPECT_EQ((*store)->DeleteStream(*sid).code(), StatusCode::kNotFound);
}

TEST(SummaryStoreApi, QueryAggregateAcrossStreams) {
  auto store = SummaryStore::Open(StoreOptions{});
  std::vector<StreamId> ids;
  for (int s = 0; s < 3; ++s) {
    ids.push_back(*(*store)->CreateStream(SmallConfig()));
    for (int t = 1; t <= 400; ++t) {
      ASSERT_TRUE((*store)->Append(ids.back(), t, static_cast<double>(s + 1)).ok());
    }
  }
  QuerySpec count{.t1 = 1, .t2 = 400, .op = QueryOp::kCount};
  auto total = (*store)->QueryAggregate(ids, count);
  ASSERT_TRUE(total.ok());
  EXPECT_DOUBLE_EQ(total->estimate, 1200.0);
  EXPECT_TRUE(total->exact);

  QuerySpec sum{.t1 = 1, .t2 = 400, .op = QueryOp::kSum};
  auto sum_result = (*store)->QueryAggregate(ids, sum);
  ASSERT_TRUE(sum_result.ok());
  EXPECT_DOUBLE_EQ(sum_result->estimate, 400.0 * (1 + 2 + 3));

  QuerySpec max{.t1 = 1, .t2 = 400, .op = QueryOp::kMax};
  auto max_result = (*store)->QueryAggregate(ids, max);
  ASSERT_TRUE(max_result.ok());
  EXPECT_DOUBLE_EQ(max_result->estimate, 3.0);

  // Partial ranges combine CIs in quadrature: interval must contain truth.
  QuerySpec partial{.t1 = 100, .t2 = 250, .op = QueryOp::kCount};
  auto partial_result = (*store)->QueryAggregate(ids, partial);
  ASSERT_TRUE(partial_result.ok());
  EXPECT_LE(partial_result->ci_lo, 453.0);
  EXPECT_GE(partial_result->ci_hi, 453.0);

  // Unsupported ops and empty stream lists are rejected.
  QuerySpec mean{.t1 = 1, .t2 = 400, .op = QueryOp::kMean};
  EXPECT_EQ((*store)->QueryAggregate(ids, mean).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*store)->QueryAggregate({}, count).status().code(),
            StatusCode::kInvalidArgument);
}

class DurableStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/ss_store_" + std::to_string(reinterpret_cast<uintptr_t>(this));
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
  }
  void TearDown() override { ASSERT_TRUE(RemoveDirRecursive(dir_).ok()); }

  StoreOptions Options() {
    StoreOptions options;
    options.dir = dir_;
    return options;
  }

  std::string dir_;
};

TEST_F(DurableStoreTest, ReopenPreservesStreamsAndAnswers) {
  StreamId sid;
  double full_sum;
  {
    auto store = SummaryStore::Open(Options());
    ASSERT_TRUE(store.ok());
    auto created = (*store)->CreateStream(SmallConfig());
    ASSERT_TRUE(created.ok());
    sid = *created;
    for (int t = 1; t <= 2000; ++t) {
      ASSERT_TRUE((*store)->Append(sid, t, static_cast<double>(t % 7)).ok());
    }
    QuerySpec spec{.t1 = 1, .t2 = 2000, .op = QueryOp::kSum};
    full_sum = (*store)->Query(sid, spec)->estimate;
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto reopened = SummaryStore::Open(Options());
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ((*reopened)->ListStreams().size(), 1u);
  QuerySpec spec{.t1 = 1, .t2 = 2000, .op = QueryOp::kSum};
  auto result = (*reopened)->Query(sid, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->estimate, full_sum);
  // Partial-range queries agree too.
  QuerySpec partial{.t1 = 500, .t2 = 1500, .op = QueryOp::kCount};
  auto partial_result = (*reopened)->Query(sid, partial);
  ASSERT_TRUE(partial_result.ok());
  EXPECT_NEAR(partial_result->estimate, 1001.0, 25.0);
}

TEST_F(DurableStoreTest, IngestContinuesAfterReopen) {
  StreamId sid;
  {
    auto store = SummaryStore::Open(Options());
    sid = *(*store)->CreateStream(SmallConfig());
    for (int t = 1; t <= 500; ++t) {
      ASSERT_TRUE((*store)->Append(sid, t, 1.0).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  {
    auto store = SummaryStore::Open(Options());
    for (int t = 501; t <= 1000; ++t) {
      ASSERT_TRUE((*store)->Append(sid, t, 1.0).ok());
    }
    QuerySpec spec{.t1 = 1, .t2 = 1000, .op = QueryOp::kCount};
    auto result = (*store)->Query(sid, spec);
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result->estimate, 1000.0);
    auto stream = (*store)->GetStream(sid);
    ASSERT_TRUE(stream.ok());
    EXPECT_EQ((*stream)->element_count(), 1000u);
  }
}

TEST_F(DurableStoreTest, ColdCacheQueryAfterEviction) {
  auto store = SummaryStore::Open(Options());
  StreamId sid = *(*store)->CreateStream(SmallConfig());
  for (int t = 1; t <= 3000; ++t) {
    ASSERT_TRUE((*store)->Append(sid, t, 1.0).ok());
  }
  ASSERT_TRUE((*store)->EvictAll().ok());
  (*store)->DropCaches();
  QuerySpec spec{.t1 = 100, .t2 = 2500, .op = QueryOp::kCount};
  auto result = (*store)->Query(sid, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, 2401.0, 60.0);
}

TEST_F(DurableStoreTest, WindowCacheBudgetBoundsResidentMemory) {
  auto store = SummaryStore::Open(Options());
  StreamConfig config = SmallConfig();
  config.window_cache_bytes = 16 << 10;  // keep only ~16 KiB of clean payloads
  StreamId sid = *(*store)->CreateStream(std::move(config));
  for (int t = 1; t <= 50000; ++t) {
    ASSERT_TRUE((*store)->Append(sid, t, static_cast<double>(t % 5)).ok());
  }
  ASSERT_TRUE((*store)->EvictAll().ok());

  auto* stream = (*store)->GetStream(sid).value();
  // Repeated wide queries load many windows; the budget must keep resident
  // clean payloads bounded while answers stay correct.
  for (int i = 0; i < 5; ++i) {
    QuerySpec spec{.t1 = 1, .t2 = 50000, .op = QueryOp::kCount};
    auto result = (*store)->Query(sid, spec);
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result->estimate, 50000.0);
  }
  // After the query returns, the budget enforcement must have dropped the
  // bulk of the loaded payloads (allow one window of slack past the budget).
  uint64_t resident = stream->ResidentWindowBytes();
  EXPECT_LE(resident, (16u << 10) + 8192);
  EXPECT_LT(resident, stream->SizeBytes());
  // And answers stay correct afterwards.
  QuerySpec partial{.t1 = 10000, .t2 = 40000, .op = QueryOp::kSum};
  auto result = (*store)->Query(sid, partial);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->estimate, 0.0);
}

TEST_F(DurableStoreTest, TotalSizeGrowsSublinearly) {
  auto store = SummaryStore::Open(Options());
  StreamConfig config = SmallConfig();
  config.operators = OperatorSet::AggregatesOnly();
  config.raw_threshold = 4;
  StreamId sid = *(*store)->CreateStream(std::move(config));
  uint64_t size_at_10k = 0;
  for (int t = 1; t <= 100000; ++t) {
    ASSERT_TRUE((*store)->Append(sid, t, 1.0).ok());
    if (t == 10000) {
      size_at_10k = (*store)->TotalSizeBytes();
    }
  }
  uint64_t size_at_100k = (*store)->TotalSizeBytes();
  // Raw data grew 10x; a sqrt-decayed store should grow ~sqrt(10) ≈ 3.2x.
  double growth = static_cast<double>(size_at_100k) / static_cast<double>(size_at_10k);
  EXPECT_LT(growth, 5.0);
  EXPECT_GT(growth, 2.0);
}

// --- fleet-query CI regression coverage (PR 2 bugfixes) ---------------------

TEST(QueryAggregateCi, NegativeSumLowerBoundNotClampedAtZero) {
  auto store = SummaryStore::Open(StoreOptions{});
  std::vector<StreamId> ids;
  for (int s = 0; s < 2; ++s) {
    ids.push_back(*(*store)->CreateStream(SmallConfig()));
    for (int t = 1; t <= 2000; ++t) {
      ASSERT_TRUE((*store)->Append(ids.back(), t, -1.0).ok());
    }
  }
  // Unaligned sub-range: old windows are summarized, so partial coverage
  // forces estimation and a non-degenerate CI.
  QuerySpec spec{.t1 = 137, .t2 = 1721, .op = QueryOp::kSum};
  auto result = (*store)->QueryAggregate(ids, spec);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->exact);
  const double truth = 2.0 * -(1721 - 137 + 1);
  EXPECT_LT(result->estimate, 0.0);
  EXPECT_NEAR(result->estimate, truth, 0.05 * std::abs(truth));
  EXPECT_LE(result->ci_lo, result->estimate);
  EXPECT_GE(result->ci_hi, result->estimate);
  // The old clamp pinned ci_lo at 0, above the (negative) estimate.
  EXPECT_LT(result->ci_lo, 0.0);

  // Counts cannot be negative: their lower bound still clamps at zero.
  QuerySpec count{.t1 = 137, .t2 = 1721, .op = QueryOp::kCount};
  auto count_result = (*store)->QueryAggregate(ids, count);
  ASSERT_TRUE(count_result.ok());
  EXPECT_GE(count_result->ci_lo, 0.0);
}

TEST(QueryAggregateCi, InexactExtremumKeepsCandidateIntervals) {
  auto store = SummaryStore::Open(StoreOptions{});
  std::vector<StreamId> ids;
  for (int s = 0; s < 2; ++s) {
    ids.push_back(*(*store)->CreateStream(SmallConfig()));
    for (int t = 1; t <= 2000; ++t) {
      // A deep negative spike early in the stream, positive sawtooth after:
      // an old summarized window straddling the query start carries the
      // spike in its whole-window bound without witnessing it in range.
      double v = (t >= 140 && t <= 170) ? -1000.0 - s : (t % 10) + 1.0;
      ASSERT_TRUE((*store)->Append(ids.back(), t, v).ok());
    }
  }
  QuerySpec spec{.t1 = 171 + 4, .t2 = 1900, .op = QueryOp::kMin};
  auto result = (*store)->QueryAggregate(ids, spec);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->exact);
  // The old code collapsed the fleet CI to the estimate even when inexact.
  EXPECT_LT(result->ci_lo, result->ci_hi);
  EXPECT_LE(result->ci_lo, result->estimate);
  // True in-range min is 1.0 (sawtooth floor); the interval must contain it.
  EXPECT_LE(result->ci_lo, 1.0);
  EXPECT_GE(result->ci_hi, 1.0);

  // Mirrored for kMax over a negated query range.
  QuerySpec max_spec{.t1 = 171 + 4, .t2 = 1900, .op = QueryOp::kMax};
  auto max_result = (*store)->QueryAggregate(ids, max_spec);
  ASSERT_TRUE(max_result.ok());
  EXPECT_GE(max_result->ci_hi, max_result->ci_lo);
  EXPECT_GE(max_result->ci_hi, max_result->estimate - 1e-12);
}

TEST(QueryAggregateParallel, MatchesSerialBitwiseAnyIdOrder) {
  StoreOptions serial_options;
  serial_options.fleet_query_threads = 1;  // in-line, no pool
  StoreOptions parallel_options;
  parallel_options.fleet_query_threads = 4;
  auto serial = SummaryStore::Open(serial_options);
  auto parallel = SummaryStore::Open(parallel_options);
  std::vector<StreamId> ids;
  for (int s = 0; s < 9; ++s) {
    StreamId a = *(*serial)->CreateStream(SmallConfig());
    StreamId b = *(*parallel)->CreateStream(SmallConfig());
    ASSERT_EQ(a, b);
    ids.push_back(a);
    for (int t = 1; t <= 600; ++t) {
      double v = std::sin(0.1 * t) * (s + 1);
      ASSERT_TRUE((*serial)->Append(a, t, v).ok());
      ASSERT_TRUE((*parallel)->Append(b, t, v).ok());
    }
  }
  std::vector<StreamId> shuffled(ids.rbegin(), ids.rend());
  for (QueryOp op : {QueryOp::kCount, QueryOp::kSum, QueryOp::kMin, QueryOp::kMax}) {
    QuerySpec spec{.t1 = 50, .t2 = 487, .op = op};
    auto a = (*serial)->QueryAggregate(ids, spec);
    auto b = (*parallel)->QueryAggregate(shuffled, spec);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Merges happen in ascending stream-id order on both paths, so the
    // floating-point results are bitwise identical.
    EXPECT_EQ(a->estimate, b->estimate) << QueryOpName(op);
    EXPECT_EQ(a->ci_lo, b->ci_lo) << QueryOpName(op);
    EXPECT_EQ(a->ci_hi, b->ci_hi) << QueryOpName(op);
    EXPECT_EQ(a->exact, b->exact) << QueryOpName(op);
  }
}

TEST(SummaryStoreApi, FailedCreateDoesNotLeakStreamIds) {
  auto store = SummaryStore::Open(StoreOptions{});
  StreamId a = *(*store)->CreateStream(SmallConfig());
  StreamConfig bad;  // null decay: rejected by CreateStream
  EXPECT_EQ((*store)->CreateStream(std::move(bad)).status().code(),
            StatusCode::kInvalidArgument);
  StreamId b = *(*store)->CreateStream(SmallConfig());
  // The id probed by the failed create is reused, not leaked.
  EXPECT_EQ(b, a + 1);
}

}  // namespace
}  // namespace ss
