// Silent-corruption defense suite: checksum envelopes, query-time
// quarantine with widened confidence intervals, load-time reconstruction,
// scrub detect/repair/heal, background scrubbing, and the on-disk (LSM +
// FaultFs) legs. The core property throughout: a corrupted window payload
// must never produce a silently wrong point estimate — every query either
// fails cleanly or returns a degraded answer whose CI covers the oracle
// ground truth. SS_FAULT_INJECT=1 (the CI corruption leg) enlarges the
// byte-flip matrix.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/serde.h"
#include "src/core/keys.h"
#include "src/core/query.h"
#include "src/core/stream.h"
#include "src/core/summary_store.h"
#include "src/obs/metrics.h"
#include "src/storage/checksum_envelope.h"
#include "src/storage/fault_fs.h"
#include "src/storage/lsm_store.h"
#include "src/storage/memory_backend.h"

namespace ss {
namespace {

using bench::Oracle;

// Small sketches keep serialized windows compact so the byte-flip matrix
// stays fast while still exercising every payload offset class.
StreamConfig TestConfig() {
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  config.operators = OperatorSet::Microbench();
  config.operators.cms_width = 64;
  config.operators.cms_depth = 3;
  config.operators.bloom_bits = 256;
  config.raw_threshold = 16;
  return config;
}

// Deterministic stream: ts = 10*i, values cycle through {0.5 .. 6.5}.
Event TestEvent(uint64_t i) {
  return Event{static_cast<Timestamp>(10 * i),
               static_cast<double>(i % 7) + 0.5};
}

std::vector<std::pair<std::string, std::string>> WindowEntries(KvBackend& kv, StreamId sid) {
  std::vector<std::pair<std::string, std::string>> entries;
  EXPECT_TRUE(kv.Scan(WindowKeyPrefix(sid), PrefixEnd(WindowKeyPrefix(sid)),
                      [&](std::string_view key, std::string_view value) {
                        entries.emplace_back(std::string(key), std::string(value));
                        return true;
                      })
                  .ok());
  return entries;
}

uint64_t CounterValue(const std::string& name) {
  return MetricRegistry::Default().GetCounter(name).value();
}

// ---------------------------------------------------------------- envelope

TEST(ChecksumEnvelope, RoundtripAndEveryByteFlipDetected) {
  std::string payload = "summary-window-payload \x00\x01\xff bytes";
  payload.push_back('\0');
  std::string sealed = SealEnvelope(payload);
  ASSERT_TRUE(IsEnveloped(sealed));
  ASSERT_EQ(sealed.size(), payload.size() + kEnvelopeHeaderSize);
  auto open = OpenEnvelope(sealed);
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(*open, payload);

  for (size_t pos = 0; pos < sealed.size(); ++pos) {
    for (uint8_t bit = 0; bit < 8; ++bit) {
      std::string bad = sealed;
      bad[pos] = static_cast<char>(bad[pos] ^ (1u << bit));
      auto result = OpenEnvelope(bad);
      if (pos < 2) {
        // A magic flip demotes the value to legacy passthrough; the payload
        // it returns is the mangled envelope, never the original bytes.
        // (Callers close this hole with decoded-identity checks.)
        if (result.ok()) {
          EXPECT_NE(*result, payload) << "flip at " << pos << " bit " << int(bit);
        }
      } else {
        ASSERT_FALSE(result.ok()) << "flip at " << pos << " bit " << int(bit);
        EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
      }
    }
  }
}

TEST(ChecksumEnvelope, LegacyPayloadPassesThroughUnchecked) {
  std::string legacy = "plain old bytes";
  auto result = OpenEnvelope(legacy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, legacy);
  EXPECT_FALSE(IsEnveloped(legacy));
  // Empty values are legacy too.
  auto empty = OpenEnvelope("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(ChecksumEnvelope, ForeignVersionWithValidCrcIsRejected) {
  // Build a version-2 envelope whose CRC is *valid* (mirrors SealEnvelope):
  // the decoder must refuse to parse a future format rather than guess.
  std::string payload = "future format";
  std::string sealed;
  sealed.push_back(kEnvelopeMagic0);
  sealed.push_back(kEnvelopeMagic1);
  char version = 2;
  sealed.push_back(version);
  uint32_t crc = Crc32c(std::string_view(&version, 1)) ^ Crc32c(payload);
  sealed.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  sealed.append(payload);
  auto result = OpenEnvelope(sealed);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

// ------------------------------------------------- query-time quarantine

TEST(QueryDegradation, CorruptWindowQuarantinesAndWidensCi) {
  MemoryBackend kv;
  Stream stream(1, TestConfig(), &kv);
  Oracle oracle;
  for (uint64_t i = 0; i < 2000; ++i) {
    Event e = TestEvent(i);
    oracle.Add(e);
    ASSERT_TRUE(stream.Append(e.ts, e.value).ok());
  }
  ASSERT_TRUE(stream.EvictAllWindows().ok());

  auto entries = WindowEntries(kv, 1);
  ASSERT_GE(entries.size(), 3u);
  const auto& [key, orig] = entries[entries.size() / 2];
  std::string bad = orig;
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x40);
  ASSERT_TRUE(kv.Put(key, bad).ok());

  uint64_t quarantines_before = CounterValue("ss_core_window_quarantine_total");
  uint64_t degraded_before = CounterValue("ss_core_query_degraded_total");
  uint64_t retries_before = CounterValue("ss_storage_read_retry_total");

  QuerySpec count{.t1 = oracle.first_ts(), .t2 = oracle.last_ts(), .op = QueryOp::kCount};
  auto result = RunQuery(stream, count);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  ASSERT_FALSE(result->skipped_spans.empty());
  // The missing window is fully inside the query, so its element count is
  // known from the index: the count answer stays exact, just flagged.
  double truth = oracle.Count(count.t1, count.t2);
  EXPECT_NEAR(result->estimate, truth, 1e-6);
  EXPECT_LE(result->ci_lo, truth + 1e-6);
  EXPECT_GE(result->ci_hi, truth - 1e-6);
  EXPECT_EQ(CounterValue("ss_core_window_quarantine_total"), quarantines_before + 1);
  EXPECT_GE(CounterValue("ss_core_query_degraded_total"), degraded_before + 1);
  // The load was retried once before quarantining (sticky corruption).
  EXPECT_GE(CounterValue("ss_storage_read_retry_total"), retries_before + 1);
  EXPECT_EQ(stream.quarantined_window_count(), 1u);

  // Sum prices the lost elements with the stream's recorded value bounds.
  QuerySpec sum = count;
  sum.op = QueryOp::kSum;
  auto sum_result = RunQuery(stream, sum);
  ASSERT_TRUE(sum_result.ok());
  EXPECT_TRUE(sum_result->degraded);
  EXPECT_FALSE(sum_result->exact);
  double sum_truth = oracle.Sum(sum.t1, sum.t2);
  EXPECT_LE(sum_result->ci_lo, sum_truth + 1e-6);
  EXPECT_GE(sum_result->ci_hi, sum_truth - 1e-6);

  // A second query is stable: already quarantined, no second quarantine.
  auto again = RunQuery(stream, count);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->degraded);
  EXPECT_EQ(CounterValue("ss_core_window_quarantine_total"), quarantines_before + 1);

  // A query range entirely before the corrupt span stays exact & clean.
  Timestamp clean_end = result->skipped_spans.front().first - 1;
  if (clean_end > oracle.first_ts()) {
    QuerySpec clean{.t1 = oracle.first_ts(), .t2 = clean_end, .op = QueryOp::kCount};
    auto clean_result = RunQuery(stream, clean);
    ASSERT_TRUE(clean_result.ok());
    EXPECT_FALSE(clean_result->degraded);
  }
}

TEST(QueryDegradation, MeanAndQuantilePropagateDegradation) {
  MemoryBackend kv;
  StreamConfig config = TestConfig();
  config.operators.quantile = true;
  Stream stream(1, config, &kv);
  Oracle oracle;
  for (uint64_t i = 0; i < 1500; ++i) {
    Event e = TestEvent(i);
    oracle.Add(e);
    ASSERT_TRUE(stream.Append(e.ts, e.value).ok());
  }
  ASSERT_TRUE(stream.EvictAllWindows().ok());
  auto entries = WindowEntries(kv, 1);
  ASSERT_GE(entries.size(), 3u);
  const auto& [key, orig] = entries[entries.size() / 3];
  std::string bad = orig;
  bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] ^ 0x01);
  ASSERT_TRUE(kv.Put(key, bad).ok());

  QuerySpec mean{.t1 = oracle.first_ts(), .t2 = oracle.last_ts(), .op = QueryOp::kMean};
  auto mean_result = RunQuery(stream, mean);
  ASSERT_TRUE(mean_result.ok()) << mean_result.status().ToString();
  EXPECT_TRUE(mean_result->degraded);
  EXPECT_FALSE(mean_result->skipped_spans.empty());
  double mean_truth = oracle.Sum(mean.t1, mean.t2) / oracle.Count(mean.t1, mean.t2);
  EXPECT_LE(mean_result->ci_lo, mean_truth + 1e-6);
  EXPECT_GE(mean_result->ci_hi, mean_truth - 1e-6);

  QuerySpec quant{.t1 = oracle.first_ts(), .t2 = oracle.last_ts(), .op = QueryOp::kQuantile,
                  .quantile_q = 0.5};
  auto q_result = RunQuery(stream, quant);
  ASSERT_TRUE(q_result.ok()) << q_result.status().ToString();
  EXPECT_TRUE(q_result->degraded);
  // Values cycle uniformly over {0.5..6.5}: the true median is 3.5; the
  // widened CI must cover it and the estimate must stay inside the CI.
  EXPECT_LE(q_result->ci_lo, 3.5 + 1e-6);
  EXPECT_GE(q_result->ci_hi, 3.5 - 1e-6);
  EXPECT_GE(q_result->estimate, q_result->ci_lo - 1e-9);
  EXPECT_LE(q_result->estimate, q_result->ci_hi + 1e-9);
}

// The matrix: flip one byte at every payload offset class of several
// windows; every query must degrade (CI covering oracle truth) or fail
// cleanly — never a silent wrong point estimate.
TEST(QueryDegradation, CorruptionMatrixNeverSilentlyWrong) {
  const bool full = std::getenv("SS_FAULT_INJECT") != nullptr;
  StoreOptions options;  // in-memory backend
  auto store = SummaryStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto sid = (*store)->CreateStream(TestConfig());
  ASSERT_TRUE(sid.ok());
  Oracle oracle;
  std::vector<Event> events;
  for (uint64_t i = 0; i < 1200; ++i) {
    Event e = TestEvent(i);
    oracle.Add(e);
    events.push_back(e);
    ASSERT_TRUE((*store)->Append(*sid, e.ts, e.value).ok());
  }
  ASSERT_TRUE((*store)->EvictAll().ok());
  auto range_extremum = [&](Timestamp t1, Timestamp t2, bool want_min) {
    double out = want_min ? 1e300 : -1e300;
    for (const Event& e : events) {
      if (e.ts >= t1 && e.ts <= t2) {
        out = want_min ? std::min(out, e.value) : std::max(out, e.value);
      }
    }
    return out;
  };
  auto stream = (*store)->GetStream(*sid);
  ASSERT_TRUE(stream.ok());

  // Healthy cover spans, index-aligned with the KV window entries (both in
  // ascending cs order): per-window "inside" query ranges.
  auto views = (*stream)->WindowsOverlapping(oracle.first_ts(), oracle.last_ts());
  ASSERT_TRUE(views.ok());
  auto entries = WindowEntries((*store)->backend(), *sid);
  ASSERT_EQ(views->size(), entries.size());
  ASSERT_GE(entries.size(), 3u);

  std::vector<size_t> targets = {0, entries.size() / 2, entries.size() - 1};
  const size_t stride = full ? 7 : 37;
  uint64_t flips = 0;
  uint64_t degraded_answers = 0;
  uint64_t clean_errors = 0;

  for (size_t widx : targets) {
    const std::string& key = entries[widx].first;
    const std::string& orig = entries[widx].second;
    Timestamp in_t1 = (*views)[widx].cover_start;
    Timestamp in_t2 = (*views)[widx].cover_end - 1;
    std::vector<size_t> offsets;
    for (size_t pos = 0; pos < std::min<size_t>(orig.size(), 24); ++pos) {
      offsets.push_back(pos);  // magic, version, CRC, window header
    }
    for (size_t pos = 24; pos < orig.size(); pos += stride) {
      offsets.push_back(pos);  // raw events / summaries / trailing fields
    }
    for (size_t pos : offsets) {
      std::string bad = orig;
      bad[pos] = static_cast<char>(bad[pos] ^ (0x01u << (pos % 8)));
      if (bad == orig) {
        continue;
      }
      ++flips;
      ASSERT_TRUE((*store)->backend().Put(key, bad).ok());
      (*store)->DropCaches();

      struct Probe {
        QueryOp op;
        double value;
      };
      const Probe probes[] = {{QueryOp::kCount, 0},     {QueryOp::kSum, 0},
                              {QueryOp::kMin, 0},       {QueryOp::kMax, 0},
                              {QueryOp::kExistence, 2.5}, {QueryOp::kFrequency, 2.5}};
      struct Range {
        Timestamp t1, t2;
      };
      const Range ranges[] = {{oracle.first_ts(), oracle.last_ts()}, {in_t1, in_t2}};
      for (const Probe& probe : probes) {
        for (const Range& range : ranges) {
          QuerySpec spec{.t1 = range.t1, .t2 = range.t2, .op = probe.op, .value = probe.value};
          auto result = (*store)->Query(*sid, spec);
          if (!result.ok()) {
            ++clean_errors;  // a clean error is an acceptable outcome
            continue;
          }
          ASSERT_TRUE(result->degraded)
              << "silent answer: window " << widx << " offset " << pos << " op "
              << QueryOpName(probe.op);
          ++degraded_answers;
          double lo = result->ci_lo;
          double hi = result->ci_hi;
          EXPECT_GE(result->estimate, lo - 1e-9);
          EXPECT_LE(result->estimate, hi + 1e-9);
          switch (probe.op) {
            case QueryOp::kCount: {
              double truth = oracle.Count(range.t1, range.t2);
              EXPECT_LE(lo, truth + 1e-6) << "offset " << pos;
              EXPECT_GE(hi, truth - 1e-6) << "offset " << pos;
              break;
            }
            case QueryOp::kSum: {
              double truth = oracle.Sum(range.t1, range.t2);
              EXPECT_LE(lo, truth + 1e-6) << "offset " << pos;
              EXPECT_GE(hi, truth - 1e-6) << "offset " << pos;
              break;
            }
            case QueryOp::kMin: {
              double truth = range_extremum(range.t1, range.t2, /*want_min=*/true);
              EXPECT_LE(lo, truth + 1e-6) << "offset " << pos;
              EXPECT_GE(hi, truth - 1e-6) << "offset " << pos;
              break;
            }
            case QueryOp::kMax: {
              double truth = range_extremum(range.t1, range.t2, /*want_min=*/false);
              EXPECT_LE(lo, truth + 1e-6) << "offset " << pos;
              EXPECT_GE(hi, truth - 1e-6) << "offset " << pos;
              break;
            }
            case QueryOp::kExistence: {
              // 2.5 occurs throughout the stream; a degraded existence
              // answer must keep "present" inside its interval.
              EXPECT_GE(hi, 1.0 - 1e-6) << "offset " << pos;
              break;
            }
            case QueryOp::kFrequency: {
              double truth = oracle.Frequency(2.5, range.t1, range.t2);
              // CMS never undercounts and the degraded hi adds the full
              // missing element count, so both sides must cover.
              EXPECT_GE(hi, truth - 1e-6) << "offset " << pos;
              EXPECT_LE(lo, truth + 1e-6) << "offset " << pos;
              break;
            }
            default:
              break;
          }
        }
      }

      // Restore the clean bytes and heal via a dry-run scrub so the next
      // flip starts from a healthy store.
      ASSERT_TRUE((*store)->backend().Put(key, orig).ok());
      ScrubReport heal;
      ASSERT_TRUE((*store)->Scrub(false, &heal).ok());
      EXPECT_GE(heal.healed, 1u) << "offset " << pos;
      EXPECT_EQ((*stream)->quarantined_window_count(), 0u);
    }
  }
  EXPECT_GT(flips, 0u);
  EXPECT_GT(degraded_answers, 0u);
  // Sanity: the healthy store answers the full-range count exactly.
  QuerySpec spec{.t1 = oracle.first_ts(), .t2 = oracle.last_ts(), .op = QueryOp::kCount};
  auto healthy = (*store)->Query(*sid, spec);
  ASSERT_TRUE(healthy.ok());
  EXPECT_FALSE(healthy->degraded);
  EXPECT_NEAR(healthy->estimate, oracle.Count(spec.t1, spec.t2), 1e-6);
}

TEST(QueryDegradation, LandmarkCorruptionFailsHard) {
  MemoryBackend kv;
  {
    Stream stream(1, TestConfig(), &kv);
    for (uint64_t i = 0; i < 300; ++i) {
      Event e = TestEvent(i);
      ASSERT_TRUE(stream.Append(e.ts, e.value).ok());
    }
    ASSERT_TRUE(stream.BeginLandmark(3001).ok());
    for (uint64_t i = 301; i < 340; ++i) {
      Event e = TestEvent(i);
      ASSERT_TRUE(stream.Append(e.ts, e.value).ok());
    }
    ASSERT_TRUE(stream.EndLandmark(3401).ok());
    for (uint64_t i = 341; i < 500; ++i) {
      Event e = TestEvent(i);
      ASSERT_TRUE(stream.Append(e.ts, e.value).ok());
    }
    ASSERT_TRUE(stream.Flush().ok());
  }
  // Corrupt the landmark's stored payload.
  std::vector<std::pair<std::string, std::string>> landmarks;
  ASSERT_TRUE(kv.Scan(LandmarkKeyPrefix(1), PrefixEnd(LandmarkKeyPrefix(1)),
                      [&](std::string_view key, std::string_view value) {
                        landmarks.emplace_back(std::string(key), std::string(value));
                        return true;
                      })
                  .ok());
  ASSERT_EQ(landmarks.size(), 1u);
  std::string bad = landmarks[0].second;
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x10);
  ASSERT_TRUE(kv.Put(landmarks[0].first, bad).ok());

  auto reloaded = Stream::Load(1, &kv);
  ASSERT_TRUE(reloaded.ok());  // the stream still loads
  EXPECT_FALSE((*reloaded)->landmark_status().ok());
  // Landmarks are lossless by contract: queries fail hard, never degrade.
  QuerySpec spec{.t1 = 0, .t2 = 10000, .op = QueryOp::kCount};
  auto result = RunQuery(**reloaded, spec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

// ------------------------------------------------------ load-time handling

TEST(LoadTime, ReopenQuarantinesCorruptWindowsIncludingAdjacentRuns) {
  MemoryBackend kv;
  Oracle oracle;
  {
    Stream stream(1, TestConfig(), &kv);
    for (uint64_t i = 0; i < 1200; ++i) {
      Event e = TestEvent(i);
      oracle.Add(e);
      ASSERT_TRUE(stream.Append(e.ts, e.value).ok());
    }
    ASSERT_TRUE(stream.EvictAllWindows().ok());
  }
  auto entries = WindowEntries(kv, 1);
  ASSERT_GE(entries.size(), 5u);
  // Corrupt two adjacent middle windows and the last window: the reopen path
  // must reconstruct a conservative shared span for the run and an exact
  // element range for each member.
  size_t mid = entries.size() / 2;
  for (size_t idx : {mid, mid + 1, entries.size() - 1}) {
    std::string bad = entries[idx].second;
    bad[bad.size() / 3] = static_cast<char>(bad[bad.size() / 3] ^ 0x08);
    ASSERT_TRUE(kv.Put(entries[idx].first, bad).ok());
  }

  auto stream = Stream::Load(1, &kv);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_EQ((*stream)->quarantined_window_count(), 3u);

  // Full-range count: every missing window is fully covered, so the lost
  // element ranges are known exactly — the answer stays exact but degraded.
  QuerySpec count{.t1 = oracle.first_ts(), .t2 = oracle.last_ts(), .op = QueryOp::kCount};
  auto result = RunQuery(**stream, count);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->degraded);
  double truth = oracle.Count(count.t1, count.t2);
  EXPECT_LE(result->ci_lo, truth + 1e-6);
  EXPECT_GE(result->ci_hi, truth - 1e-6);

  // Sum over the full range covers truth via the persisted value bounds.
  QuerySpec sum = count;
  sum.op = QueryOp::kSum;
  auto sum_result = RunQuery(**stream, sum);
  ASSERT_TRUE(sum_result.ok());
  EXPECT_TRUE(sum_result->degraded);
  double sum_truth = oracle.Sum(sum.t1, sum.t2);
  EXPECT_LE(sum_result->ci_lo, sum_truth + 1e-6);
  EXPECT_GE(sum_result->ci_hi, sum_truth - 1e-6);

  // Sub-ranges anywhere inside the stream still cover the truth.
  Timestamp span = oracle.last_ts() - oracle.first_ts();
  for (int frac = 0; frac < 8; ++frac) {
    Timestamp t1 = oracle.first_ts() + span * frac / 8;
    Timestamp t2 = t1 + span / 4;
    QuerySpec sub{.t1 = t1, .t2 = t2, .op = QueryOp::kCount};
    auto sub_result = RunQuery(**stream, sub);
    ASSERT_TRUE(sub_result.ok()) << sub_result.status().ToString();
    double sub_truth = oracle.Count(t1, t2);
    EXPECT_LE(sub_result->ci_lo, sub_truth + 1e-6) << "frac " << frac;
    EXPECT_GE(sub_result->ci_hi, sub_truth - 1e-6) << "frac " << frac;
  }
}

// ------------------------------------------------------------------- scrub

TEST(Scrub, DryRunDetectsWithoutMutating) {
  StoreOptions options;
  auto store = SummaryStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto sid = (*store)->CreateStream(TestConfig());
  ASSERT_TRUE(sid.ok());
  for (uint64_t i = 0; i < 800; ++i) {
    Event e = TestEvent(i);
    ASSERT_TRUE((*store)->Append(*sid, e.ts, e.value).ok());
  }
  ASSERT_TRUE((*store)->EvictAll().ok());
  auto entries = WindowEntries((*store)->backend(), *sid);
  ASSERT_GE(entries.size(), 3u);
  const auto& [key, orig] = entries[1];
  std::string bad = orig;
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x20);
  ASSERT_TRUE((*store)->backend().Put(key, bad).ok());

  uint64_t errors_before = CounterValue("ss_core_scrub_errors_total");
  uint64_t windows_before = CounterValue("ss_core_scrub_windows_total");
  ScrubReport report;
  ASSERT_TRUE((*store)->Scrub(false, &report).ok());
  EXPECT_EQ(report.windows_checked, entries.size());
  EXPECT_EQ(report.errors, 1u);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(report.repaired, 0u);
  EXPECT_EQ(CounterValue("ss_core_scrub_errors_total"), errors_before + 1);
  EXPECT_EQ(CounterValue("ss_core_scrub_windows_total"), windows_before + entries.size());

  // Dry run: the KV copy is untouched (still the corrupt bytes) and no
  // window was merged away.
  auto stored = (*store)->backend().Get(key);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(*stored, bad);
  auto stream = (*store)->GetStream(*sid);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ((*stream)->quarantined_window_count(), 1u);
  EXPECT_EQ((*stream)->window_count(), entries.size());
}

TEST(Scrub, RepairMergesQuarantinedWindowIntoLeftNeighbor) {
  StoreOptions options;
  auto store = SummaryStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto sid = (*store)->CreateStream(TestConfig());
  ASSERT_TRUE(sid.ok());
  Oracle oracle;
  for (uint64_t i = 0; i < 1000; ++i) {
    Event e = TestEvent(i);
    oracle.Add(e);
    ASSERT_TRUE((*store)->Append(*sid, e.ts, e.value).ok());
  }
  ASSERT_TRUE((*store)->EvictAll().ok());
  auto entries = WindowEntries((*store)->backend(), *sid);
  ASSERT_GE(entries.size(), 4u);
  const auto& [key, orig] = entries[entries.size() / 2];
  std::string bad = orig;
  bad[kEnvelopeHeaderSize + 2] = static_cast<char>(bad[kEnvelopeHeaderSize + 2] ^ 0x7f);
  ASSERT_TRUE((*store)->backend().Put(key, bad).ok());

  uint64_t repaired_before = CounterValue("ss_core_scrub_repaired_total");
  ScrubReport report;
  ASSERT_TRUE((*store)->Scrub(true, &report).ok());
  EXPECT_EQ(report.errors, 1u);
  EXPECT_GE(report.repaired, 1u);
  EXPECT_GE(CounterValue("ss_core_scrub_repaired_total"), repaired_before + 1);

  auto stream = (*store)->GetStream(*sid);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ((*stream)->quarantined_window_count(), 0u);
  EXPECT_EQ((*stream)->window_count(), entries.size() - 1);
  // The corrupt key was deleted by the repair flush.
  auto gone = (*store)->backend().Get(key);
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);

  // The lost span survives as lost_count on the left neighbor: a full-range
  // count is exact (the lost element count is known) but flagged degraded.
  QuerySpec count{.t1 = oracle.first_ts(), .t2 = oracle.last_ts(), .op = QueryOp::kCount};
  auto result = (*store)->Query(*sid, count);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->degraded);
  double truth = oracle.Count(count.t1, count.t2);
  EXPECT_LE(result->ci_lo, truth + 1e-6);
  EXPECT_GE(result->ci_hi, truth - 1e-6);

  // And it survives reload: lost_count is serialized with the window.
  auto reloaded = Stream::Load(*sid, &(*store)->backend());
  ASSERT_TRUE(reloaded.ok());
  auto re_result = RunQuery(**reloaded, count);
  ASSERT_TRUE(re_result.ok());
  EXPECT_TRUE(re_result->degraded);
  EXPECT_LE(re_result->ci_lo, truth + 1e-6);
  EXPECT_GE(re_result->ci_hi, truth - 1e-6);

  // A follow-up scrub over the healthy store is clean.
  ScrubReport clean;
  ASSERT_TRUE((*store)->Scrub(true, &clean).ok());
  EXPECT_EQ(clean.errors, 0u);
  EXPECT_EQ(clean.repaired, 0u);
}

TEST(Scrub, RepairAbsorbsQuarantinedHeadRunIntoRightNeighbor) {
  // The stream's first windows have no left neighbor; a corrupt head run
  // must merge rightward into the first intact window, which is re-keyed.
  StoreOptions options;
  auto store = SummaryStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto sid = (*store)->CreateStream(TestConfig());
  ASSERT_TRUE(sid.ok());
  Oracle oracle;
  for (uint64_t i = 0; i < 1000; ++i) {
    Event e = TestEvent(i);
    oracle.Add(e);
    ASSERT_TRUE((*store)->Append(*sid, e.ts, e.value).ok());
  }
  ASSERT_TRUE((*store)->EvictAll().ok());
  auto entries = WindowEntries((*store)->backend(), *sid);
  ASSERT_GE(entries.size(), 4u);
  for (size_t i = 0; i < 2; ++i) {
    const auto& [key, orig] = entries[i];
    std::string bad = orig;
    bad[kEnvelopeHeaderSize + 1] = static_cast<char>(bad[kEnvelopeHeaderSize + 1] ^ 0x55);
    ASSERT_TRUE((*store)->backend().Put(key, bad).ok());
  }

  ScrubReport report;
  ASSERT_TRUE((*store)->Scrub(true, &report).ok());
  EXPECT_EQ(report.errors, 2u);
  EXPECT_EQ(report.quarantined, 2u);
  EXPECT_GE(report.repaired, 2u);

  auto stream = (*store)->GetStream(*sid);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ((*stream)->quarantined_window_count(), 0u);
  // Two head windows merged into the (re-keyed) third: net loss of two slots.
  EXPECT_EQ((*stream)->window_count(), entries.size() - 2);
  // The survivor was re-keyed onto the head key; the rest of the run and
  // the survivor's old key are tombstoned.
  EXPECT_TRUE((*store)->backend().Get(entries[0].first).ok());
  EXPECT_EQ((*store)->backend().Get(entries[1].first).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ((*store)->backend().Get(entries[2].first).status().code(),
            StatusCode::kNotFound);

  // The lost head span is an explicit lost_count: full-range count stays
  // exact but degraded, and the CI covers the truth across restarts.
  QuerySpec count{.t1 = oracle.first_ts(), .t2 = oracle.last_ts(), .op = QueryOp::kCount};
  auto result = (*store)->Query(*sid, count);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->degraded);
  double truth = oracle.Count(count.t1, count.t2);
  EXPECT_LE(result->ci_lo, truth + 1e-6);
  EXPECT_GE(result->ci_hi, truth - 1e-6);
  auto reloaded = Stream::Load(*sid, &(*store)->backend());
  ASSERT_TRUE(reloaded.ok());
  auto re_result = RunQuery(**reloaded, count);
  ASSERT_TRUE(re_result.ok());
  EXPECT_TRUE(re_result->degraded);
  EXPECT_LE(re_result->ci_lo, truth + 1e-6);
  EXPECT_GE(re_result->ci_hi, truth - 1e-6);

  ScrubReport clean;
  ASSERT_TRUE((*store)->Scrub(true, &clean).ok());
  EXPECT_EQ(clean.errors, 0u);
  EXPECT_EQ(clean.repaired, 0u);
}

TEST(Scrub, ResidentCopyRepairsCorruptKvInPlace) {
  StoreOptions options;
  auto store = SummaryStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto sid = (*store)->CreateStream(TestConfig());
  ASSERT_TRUE(sid.ok());
  for (uint64_t i = 0; i < 600; ++i) {
    Event e = TestEvent(i);
    ASSERT_TRUE((*store)->Append(*sid, e.ts, e.value).ok());
  }
  // Flush persists, but payloads stay resident (no evict): scrub can repair
  // a corrupt KV copy by re-flushing from memory.
  ASSERT_TRUE((*store)->Flush().ok());
  auto entries = WindowEntries((*store)->backend(), *sid);
  ASSERT_GE(entries.size(), 2u);
  const auto& [key, orig] = entries[0];
  std::string bad = orig;
  bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] ^ 0x02);
  ASSERT_TRUE((*store)->backend().Put(key, bad).ok());

  ScrubReport report;
  ASSERT_TRUE((*store)->Scrub(true, &report).ok());
  EXPECT_EQ(report.errors, 1u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_GE(report.repaired, 1u);

  // The rewritten copy verifies; no window was lost, no degradation remains.
  auto stream = (*store)->GetStream(*sid);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ((*stream)->quarantined_window_count(), 0u);
  EXPECT_EQ((*stream)->window_count(), entries.size());
  ScrubReport clean;
  ASSERT_TRUE((*store)->Scrub(false, &clean).ok());
  EXPECT_EQ(clean.errors, 0u);
}

TEST(Scrub, CorruptLandmarkIsRepairedFromMemory) {
  StoreOptions options;
  auto store = SummaryStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto sid = (*store)->CreateStream(TestConfig());
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE((*store)->Append(*sid, 10, 1.0).ok());
  ASSERT_TRUE((*store)->BeginLandmark(*sid, 20).ok());
  ASSERT_TRUE((*store)->Append(*sid, 30, 2.0).ok());
  ASSERT_TRUE((*store)->EndLandmark(*sid, 40).ok());
  ASSERT_TRUE((*store)->Append(*sid, 50, 3.0).ok());
  ASSERT_TRUE((*store)->Flush().ok());

  std::vector<std::pair<std::string, std::string>> landmarks;
  ASSERT_TRUE((*store)->backend()
                  .Scan(LandmarkKeyPrefix(*sid), PrefixEnd(LandmarkKeyPrefix(*sid)),
                        [&](std::string_view key, std::string_view value) {
                          landmarks.emplace_back(std::string(key), std::string(value));
                          return true;
                        })
                  .ok());
  ASSERT_EQ(landmarks.size(), 1u);
  std::string bad = landmarks[0].second;
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x04);
  ASSERT_TRUE((*store)->backend().Put(landmarks[0].first, bad).ok());

  ScrubReport report;
  ASSERT_TRUE((*store)->Scrub(true, &report).ok());
  EXPECT_EQ(report.landmarks_checked, 1u);
  EXPECT_EQ(report.errors, 1u);
  EXPECT_GE(report.repaired, 1u);
  // The re-persisted copy verifies again.
  ScrubReport clean;
  ASSERT_TRUE((*store)->Scrub(false, &clean).ok());
  EXPECT_EQ(clean.errors, 0u);
}

TEST(Scrub, BackgroundThreadDetectsAndRepairs) {
  StoreOptions options;
  options.scrub_interval_ms = 20;
  options.scrub_repair = true;
  auto store = SummaryStore::Open(options);
  ASSERT_TRUE(store.ok());
  auto sid = (*store)->CreateStream(TestConfig());
  ASSERT_TRUE(sid.ok());
  Oracle oracle;
  for (uint64_t i = 0; i < 600; ++i) {
    Event e = TestEvent(i);
    oracle.Add(e);
    ASSERT_TRUE((*store)->Append(*sid, e.ts, e.value).ok());
  }
  ASSERT_TRUE((*store)->EvictAll().ok());
  auto entries = WindowEntries((*store)->backend(), *sid);
  ASSERT_GE(entries.size(), 3u);
  const auto& [key, orig] = entries[entries.size() / 2];
  std::string bad = orig;
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x11);
  ASSERT_TRUE((*store)->backend().Put(key, bad).ok());

  // The background thread must notice and repair without any explicit call.
  uint64_t cycles_before = CounterValue("ss_core_scrub_cycles_total");
  bool repaired = false;
  for (int i = 0; i < 500 && !repaired; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    repaired = (*store)->backend().Get(key).status().code() == StatusCode::kNotFound;
  }
  EXPECT_TRUE(repaired) << "background scrub never repaired the corrupt window";
  EXPECT_GT(CounterValue("ss_core_scrub_cycles_total"), cycles_before);

  QuerySpec count{.t1 = oracle.first_ts(), .t2 = oracle.last_ts(), .op = QueryOp::kCount};
  auto result = (*store)->Query(*sid, count);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->degraded);
  double truth = oracle.Count(count.t1, count.t2);
  EXPECT_LE(result->ci_lo, truth + 1e-6);
  EXPECT_GE(result->ci_hi, truth - 1e-6);
  store->reset();  // destructor must stop and join the scrub thread
}

// ------------------------------------------------------------ on-disk legs

TEST(DiskCorruption, SstBitRotDegradesOrFailsCleanlyAndScrubHeals) {
  bench::ScopedTempDir dir("corruption_sst");
  FaultFs fs;
  SetFileOpsForTest(&fs);
  {
    StoreOptions options;
    options.dir = dir.path();
    options.lsm.memtable_bytes = 16 << 10;  // force data into SSTables
    auto store = SummaryStore::Open(options);
    ASSERT_TRUE(store.ok());
    auto sid = (*store)->CreateStream(TestConfig());
    ASSERT_TRUE(sid.ok());
    Oracle oracle;
    for (uint64_t i = 0; i < 3000; ++i) {
      Event e = TestEvent(i);
      oracle.Add(e);
      ASSERT_TRUE((*store)->Append(*sid, e.ts, e.value).ok());
    }
    ASSERT_TRUE((*store)->EvictAll().ok());
    QuerySpec count{.t1 = oracle.first_ts(), .t2 = oracle.last_ts(), .op = QueryOp::kCount};
    double truth = oracle.Count(count.t1, count.t2);
    {
      auto healthy = (*store)->Query(*sid, count);
      ASSERT_TRUE(healthy.ok());
      EXPECT_FALSE(healthy->degraded);
      EXPECT_NEAR(healthy->estimate, truth, 1e-6);
    }

    auto names = ListDir(dir.path());
    ASSERT_TRUE(names.ok());
    std::vector<std::string> ssts;
    for (const std::string& name : *names) {
      if (name.size() > 4 && name.substr(name.size() - 4) == ".sst") {
        ssts.push_back(dir.path() + "/" + name);
      }
    }
    ASSERT_FALSE(ssts.empty()) << "memtable never spilled to SSTables";

    // Flip bytes mid-file in every table: reads see bit rot.
    for (const std::string& sst : ssts) {
      struct stat st{};
      ASSERT_EQ(::stat(sst.c_str(), &st), 0);
      fs.CorruptRange(sst, static_cast<uint64_t>(st.st_size) / 2, 32, 0xff);
    }
    (*store)->DropCaches();
    auto result = (*store)->Query(*sid, count);
    if (result.ok()) {
      // Either the rot missed every block this query reads (answer exact)
      // or the query degraded with a covering CI — never silently wrong.
      if (!result->degraded) {
        EXPECT_NEAR(result->estimate, truth, 1e-6);
      } else {
        EXPECT_LE(result->ci_lo, truth + 1e-6);
        EXPECT_GE(result->ci_hi, truth - 1e-6);
      }
    }

    // "Replace the disk": clear the rot, scrub heals the quarantined spans,
    // and the store answers exactly again.
    for (const std::string& sst : ssts) {
      fs.ClearCorruption(sst);
    }
    ScrubReport heal;
    ASSERT_TRUE((*store)->Scrub(false, &heal).ok());
    auto recovered = (*store)->Query(*sid, count);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_FALSE(recovered->degraded);
    EXPECT_NEAR(recovered->estimate, truth, 1e-6);
  }
  SetFileOpsForTest(nullptr);
}

// Satellite regression: a block that fails its checksum must not be served
// from or inserted into the block cache, and a failed Get must not be
// negatively cached — corrupt -> error -> repair -> success.
TEST(BlockCache, CorruptBlockNeverCachedAndErrorNotSticky) {
  bench::ScopedTempDir dir("corruption_blockcache");
  FaultFs fs;
  SetFileOpsForTest(&fs);
  {
    LsmOptions options;
    options.memtable_bytes = 8 << 10;
    auto store = LsmStore::Open(dir.path(), options);
    ASSERT_TRUE(store.ok());
    auto key = [](int i) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "key%05d", i);
      return std::string(buf);
    };
    auto value = [](int i) { return std::string(100, static_cast<char>('a' + i % 26)); };
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE((*store)->Put(key(i), value(i)).ok());
    }
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_GT((*store)->sstable_count(), 0u);
    (*store)->DropCaches();

    auto names = ListDir(dir.path());
    ASSERT_TRUE(names.ok());
    std::vector<std::string> ssts;
    for (const std::string& name : *names) {
      if (name.size() > 4 && name.substr(name.size() - 4) == ".sst") {
        ssts.push_back(dir.path() + "/" + name);
      }
    }
    ASSERT_FALSE(ssts.empty());
    // Rot the front of every table — data blocks live first.
    for (const std::string& sst : ssts) {
      fs.CorruptRange(sst, 4, 16, 0x5a);
    }

    // At least one key must fail its checksum; any key that still succeeds
    // must return the exact value (the block CRC rules out silent rot).
    std::vector<int> failed;
    for (int i = 0; i < 400; ++i) {
      auto got = (*store)->Get(key(i));
      if (got.ok()) {
        EXPECT_EQ(*got, value(i)) << "silently corrupt value for " << key(i);
      } else {
        failed.push_back(i);
      }
    }
    ASSERT_FALSE(failed.empty()) << "corruption was never detected";

    // Repair the disk. WITHOUT dropping caches: if the corrupt block had
    // been cached, or the failure negatively cached, these Gets would still
    // fail (or worse, return rotten bytes).
    for (const std::string& sst : ssts) {
      fs.ClearCorruption(sst);
    }
    for (int i : failed) {
      auto got = (*store)->Get(key(i));
      ASSERT_TRUE(got.ok()) << "error was sticky for " << key(i) << ": "
                            << got.status().ToString();
      EXPECT_EQ(*got, value(i));
    }
    // And the repaired blocks are cacheable again: a re-read hits the cache.
    uint64_t hits_before = (*store)->cache_hits();
    for (int i : failed) {
      ASSERT_TRUE((*store)->Get(key(i)).ok());
    }
    EXPECT_GT((*store)->cache_hits(), hits_before);
  }
  SetFileOpsForTest(nullptr);
}

}  // namespace
}  // namespace ss
