#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "src/core/query.h"
#include "src/core/stream.h"
#include "src/random/rng.h"
#include "src/storage/memory_backend.h"

namespace ss {
namespace {

StreamConfig FullConfig(uint64_t raw_threshold = 0) {
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  config.operators = OperatorSet::Full();
  config.operators.bloom_bits = 1024;
  config.operators.cms_width = 512;
  config.operators.hist_lo = 0.0;
  config.operators.hist_hi = 100.0;
  config.raw_threshold = raw_threshold;
  config.seed = 3;
  return config;
}

// Stream of 1000 regular events, value = ts % 50.
void FillRegular(Stream& stream, int n = 1000) {
  for (int t = 1; t <= n; ++t) {
    ASSERT_TRUE(stream.Append(t, static_cast<double>(t % 50)).ok());
  }
}

TEST(Query, FullRangeCountIsExact) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  FillRegular(stream);
  QuerySpec spec{.t1 = 1, .t2 = 1000, .op = QueryOp::kCount};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->estimate, 1000.0);
  EXPECT_TRUE(result->exact);
  EXPECT_EQ(result->ci_lo, result->ci_hi);
}

TEST(Query, FullRangeSumIsExact) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  FillRegular(stream);
  double expected = 0;
  for (int t = 1; t <= 1000; ++t) {
    expected += t % 50;
  }
  QuerySpec spec{.t1 = 1, .t2 = 1000, .op = QueryOp::kSum};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->estimate, expected);
}

TEST(Query, SubWindowCountProportionalOnRegularArrivals) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  FillRegular(stream, 2000);
  // A range covering roughly a quarter of old data.
  QuerySpec spec{.t1 = 100, .t2 = 300, .op = QueryOp::kCount};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  // Regular arrivals: proportional estimate should be near-perfect.
  EXPECT_NEAR(result->estimate, 201.0, 10.0);
  EXPECT_LE(result->ci_lo, result->estimate);
  EXPECT_GE(result->ci_hi, result->estimate);
  // Regular arrivals have near-zero interarrival variance => tight CI.
  EXPECT_LT(result->ci_hi - result->ci_lo, 20.0);
}

TEST(Query, NegativeSumCiNotClampedAtZero) {
  // A sum over negative values must keep a fully negative interval; the old
  // unconditional max(0, lo) clamp inverted it (lo = 0 > hi < 0).
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  for (int t = 1; t <= 1000; ++t) {
    ASSERT_TRUE(stream.Append(t, -10.0 - (t % 50)).ok());
  }
  QuerySpec spec{.t1 = 333, .t2 = 1000, .op = QueryOp::kSum};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->estimate, 0.0);
  EXPECT_LE(result->ci_lo, result->estimate);
  EXPECT_GE(result->ci_hi, result->estimate);
  // The whole interval sits below zero.
  EXPECT_LT(result->ci_hi, 0.0);
}

TEST(Query, BurstyCountCiLowerBoundKeepsExactPart) {
  // With extremely bursty interarrivals (cv^2 ~ 1000) the normal interval
  // for the partial window is much wider than its mean; the lower bound
  // must still never drop below the exactly-counted suffix of the range.
  // (Previously it was only clamped at zero.)
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  const int n = 1200;
  std::vector<Timestamp> ts(n + 1);
  Timestamp t = 0;
  for (int i = 1; i <= n; ++i) {
    t += (i % 100 == 0) ? 1000000 : 1;
    ts[i] = t;
    ASSERT_TRUE(stream.Append(t, 1.0).ok());
  }
  // Furthest-back boundary from which the suffix query is still exact.
  int k_exact = 0;
  for (int k = n; k >= 1; --k) {
    QuerySpec probe{.t1 = ts[k], .t2 = ts[n], .op = QueryOp::kCount};
    auto r = RunQuery(stream, probe);
    ASSERT_TRUE(r.ok());
    if (!r->exact) {
      break;
    }
    k_exact = k;
  }
  ASSERT_GT(k_exact, 1);
  const double exact_suffix = n - k_exact + 1;

  QuerySpec spec{.t1 = ts[311], .t2 = ts[n], .op = QueryOp::kCount};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->exact);
  // Every window fully inside [ts[k_exact], ts[n]] is also fully inside the
  // wider range, so its exact part — and hence the floored lower bound —
  // is at least the exact suffix count.
  EXPECT_GE(result->ci_lo, exact_suffix);
  EXPECT_LE(result->ci_lo, result->estimate);
  EXPECT_GE(result->ci_hi, result->estimate);
}

TEST(Query, ErrorDecreasesWithQueryLength) {
  // §7.2.2: "Error is generally expected to decrease with length."
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  Rng rng(5);
  Timestamp t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += 1 + static_cast<Timestamp>(rng.NextBounded(3));
    ASSERT_TRUE(stream.Append(t, 1.0).ok());
  }
  QuerySpec small{.t1 = 100, .t2 = 140, .op = QueryOp::kCount};
  QuerySpec large{.t1 = 100, .t2 = static_cast<Timestamp>(static_cast<double>(t) * 0.8),
                  .op = QueryOp::kCount};
  auto small_result = RunQuery(stream, small);
  auto large_result = RunQuery(stream, large);
  ASSERT_TRUE(small_result.ok());
  ASSERT_TRUE(large_result.ok());
  double small_rel = small_result->CiWidth() / std::max(1.0, small_result->estimate);
  double large_rel = large_result->CiWidth() / std::max(1.0, large_result->estimate);
  EXPECT_LT(large_rel, small_rel);
}

TEST(Query, PoissonCiCoversTruth) {
  // Statistical check of the Appendix B machinery: on Poisson arrivals, the
  // 95% CI should contain the true count for the vast majority of random
  // sub-range queries.
  MemoryBackend kv;
  StreamConfig config = FullConfig();
  config.arrival_model = ArrivalModel::kPoisson;
  Stream stream(1, config, &kv);

  Rng arrival_rng(17);
  std::vector<Timestamp> arrivals;
  double t = 0;
  for (int i = 0; i < 20000; ++i) {
    t += arrival_rng.NextExponential(0.5);  // mean gap 2 units
    arrivals.push_back(static_cast<Timestamp>(t));
    ASSERT_TRUE(stream.Append(arrivals.back(), 1.0).ok());
  }

  Rng query_rng(18);
  int covered = 0;
  int trials = 200;
  for (int i = 0; i < trials; ++i) {
    Timestamp lo = static_cast<Timestamp>(query_rng.NextBounded(static_cast<uint64_t>(t * 0.8)));
    Timestamp hi = lo + 50 + static_cast<Timestamp>(query_rng.NextBounded(2000));
    QuerySpec spec{.t1 = lo, .t2 = hi, .op = QueryOp::kCount};
    auto result = RunQuery(stream, spec);
    ASSERT_TRUE(result.ok());
    double truth = 0;
    for (Timestamp a : arrivals) {
      if (a >= lo && a <= hi) {
        ++truth;
      }
    }
    if (truth >= result->ci_lo - 1e-9 && truth <= result->ci_hi + 1e-9) {
      ++covered;
    }
  }
  // Allow slack for model mismatch at window boundaries; nominal is 95%.
  EXPECT_GE(covered, trials * 80 / 100);
}

TEST(Query, FrequencyFullRangeTracksTruth) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  Rng rng(7);
  std::map<int, int> truth;
  for (int t = 1; t <= 5000; ++t) {
    int v = static_cast<int>(rng.NextBounded(40));
    ++truth[v];
    ASSERT_TRUE(stream.Append(t, static_cast<double>(v)).ok());
  }
  QuerySpec spec{.t1 = 1, .t2 = 5000, .op = QueryOp::kFrequency, .value = 7.0};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  // Count-mean-min corrected estimate: small symmetric noise around truth.
  EXPECT_NEAR(result->estimate, truth[7], truth[7] * 0.15 + 20);
}

TEST(Query, ExistenceFindsPresentValue) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  FillRegular(stream);  // values 0..49 everywhere
  QuerySpec spec{.t1 = 1, .t2 = 1000, .op = QueryOp::kExistence, .value = 25.0};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->bool_answer);
  EXPECT_GT(result->estimate, 0.5);
}

TEST(Query, ExistenceRejectsAbsentValue) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  FillRegular(stream);
  QuerySpec spec{.t1 = 1, .t2 = 1000, .op = QueryOp::kExistence, .value = 777.0};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  // Bloom false positives possible per window but should not dominate.
  EXPECT_FALSE(result->bool_answer);
}

TEST(Query, DistinctCountReasonable) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  FillRegular(stream);  // exactly 50 distinct values
  QuerySpec spec{.t1 = 1, .t2 = 1000, .op = QueryOp::kDistinct};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, 50.0, 5.0);
}

TEST(Query, QuantileMedianReasonable) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  FillRegular(stream, 5000);  // uniform over 0..49
  QuerySpec spec{.t1 = 1, .t2 = 5000, .op = QueryOp::kQuantile, .quantile_q = 0.5};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, 24.5, 5.0);
}

TEST(Query, MinMaxExactOverFullRange) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  FillRegular(stream);
  QuerySpec spec{.t1 = 1, .t2 = 1000, .op = QueryOp::kMin};
  auto min_result = RunQuery(stream, spec);
  ASSERT_TRUE(min_result.ok());
  EXPECT_DOUBLE_EQ(min_result->estimate, 0.0);
  spec.op = QueryOp::kMax;
  auto max_result = RunQuery(stream, spec);
  EXPECT_DOUBLE_EQ(max_result->estimate, 49.0);
}

TEST(Query, MeanCombinesCountAndSum) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  for (int t = 1; t <= 1000; ++t) {
    ASSERT_TRUE(stream.Append(t, 10.0).ok());
  }
  QuerySpec spec{.t1 = 1, .t2 = 1000, .op = QueryOp::kMean};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, 10.0, 1e-9);
}

TEST(Query, ValueRangeCountViaHistogram) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  FillRegular(stream, 5000);  // values 0..49 uniform, hist range [0,100) x64
  // Full time range: histogram interpolation over a uniform value mix.
  QuerySpec spec{.t1 = 1, .t2 = 5000, .op = QueryOp::kValueRangeCount,
                 .value_lo = 10.0, .value_hi = 20.0};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  // True selectivity: values 10..19 of 0..49 => 20% of 5000 = 1000; the
  // 64-bucket histogram over [0,100) interpolates integer values with some
  // bucket-edge smear.
  EXPECT_NEAR(result->estimate, 1000.0, 120.0);

  // Sub time range: proportional share with a CI.
  QuerySpec partial = spec;
  partial.t1 = 1000;
  partial.t2 = 3000;
  auto partial_result = RunQuery(stream, partial);
  ASSERT_TRUE(partial_result.ok());
  EXPECT_NEAR(partial_result->estimate, 400.0, 80.0);
  EXPECT_LE(partial_result->ci_lo, partial_result->estimate);
  EXPECT_GE(partial_result->ci_hi, partial_result->estimate);

  // Empty and inverted value ranges are rejected.
  QuerySpec empty = spec;
  empty.value_lo = 5.0;
  empty.value_hi = 5.0;
  EXPECT_EQ(RunQuery(stream, empty).status().code(), StatusCode::kInvalidArgument);
}

TEST(Query, ValueRangeCountRequiresHistogram) {
  MemoryBackend kv;
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  config.operators = OperatorSet::AggregatesOnly();
  config.raw_threshold = 0;
  Stream stream(1, config, &kv);
  FillRegular(stream, 200);
  QuerySpec spec{.t1 = 1, .t2 = 200, .op = QueryOp::kValueRangeCount,
                 .value_lo = 0.0, .value_hi = 10.0};
  EXPECT_EQ(RunQuery(stream, spec).status().code(), StatusCode::kFailedPrecondition);
}

TEST(Query, MissingOperatorReportsFailedPrecondition) {
  MemoryBackend kv;
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  config.operators = OperatorSet::AggregatesOnly();
  config.raw_threshold = 0;
  Stream stream(1, config, &kv);
  FillRegular(stream);
  QuerySpec spec{.t1 = 1, .t2 = 1000, .op = QueryOp::kExistence, .value = 1.0};
  EXPECT_EQ(RunQuery(stream, spec).status().code(), StatusCode::kFailedPrecondition);
  spec.op = QueryOp::kFrequency;
  EXPECT_EQ(RunQuery(stream, spec).status().code(), StatusCode::kFailedPrecondition);
  spec.op = QueryOp::kDistinct;
  EXPECT_EQ(RunQuery(stream, spec).status().code(), StatusCode::kFailedPrecondition);
}

TEST(Query, InvalidSpecsRejected) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  FillRegular(stream, 10);
  QuerySpec backwards{.t1 = 100, .t2 = 50, .op = QueryOp::kCount};
  EXPECT_EQ(RunQuery(stream, backwards).status().code(), StatusCode::kInvalidArgument);
  QuerySpec bad_conf{.t1 = 1, .t2 = 10, .op = QueryOp::kCount, .confidence = 1.5};
  EXPECT_EQ(RunQuery(stream, bad_conf).status().code(), StatusCode::kInvalidArgument);
}

TEST(Query, EmptyRangeOutsideDataIsZero) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  FillRegular(stream, 100);
  QuerySpec spec{.t1 = 5000, .t2 = 6000, .op = QueryOp::kCount};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->estimate, 0.0);
}

TEST(Query, RawThresholdGivesExactRecentAnswers) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(/*raw_threshold=*/64), &kv);
  FillRegular(stream, 1000);
  // The newest windows are raw; a recent small query is answered exactly.
  QuerySpec spec{.t1 = 995, .t2 = 1000, .op = QueryOp::kCount};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->estimate, 6.0);
  EXPECT_TRUE(result->exact);
}

// Skewed fill for the top-k tests: value v appears ~proportional to its
// weight, with value 1.0 dominating.
void FillSkewed(Stream& stream, int n = 4000) {
  Rng rng(17);
  for (int t = 1; t <= n; ++t) {
    uint64_t r = rng.NextBounded(100);
    double v;
    if (r < 40) {
      v = 1.0;
    } else if (r < 65) {
      v = 2.0;
    } else if (r < 80) {
      v = 3.0;
    } else {
      v = static_cast<double>(4 + r % 16);
    }
    ASSERT_TRUE(stream.Append(t, v).ok());
  }
}

TEST(Query, TopKRanksDominantValueFirst) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  FillSkewed(stream);
  QuerySpec spec{.t1 = 1, .t2 = 4000, .op = QueryOp::kTopK, .top_k = 3};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->topk.size(), 3u);
  EXPECT_DOUBLE_EQ(result->topk[0].value, 1.0);
  EXPECT_DOUBLE_EQ(result->topk[1].value, 2.0);
  EXPECT_DOUBLE_EQ(result->topk[2].value, 3.0);
  // Headline estimate mirrors the first entry.
  EXPECT_DOUBLE_EQ(result->estimate, result->topk[0].estimate);
}

TEST(Query, TopKBracketContainsTruthFullRange) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  std::map<double, int> truth;
  Rng rng(17);
  for (int t = 1; t <= 4000; ++t) {
    uint64_t r = rng.NextBounded(100);
    double v = r < 40 ? 1.0 : (r < 65 ? 2.0 : (r < 80 ? 3.0 : 4.0 + r % 16));
    ++truth[v];
    ASSERT_TRUE(stream.Append(t, v).ok());
  }
  QuerySpec spec{.t1 = 1, .t2 = 4000, .op = QueryOp::kTopK, .top_k = 5};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->topk.size(), 5u);
  for (const auto& entry : result->topk) {
    double actual = truth[entry.value];
    EXPECT_LE(entry.ci_lo, actual) << "value " << entry.value;
    EXPECT_GE(entry.ci_hi, actual) << "value " << entry.value;
    EXPECT_LE(entry.ci_lo, entry.estimate);
    EXPECT_GE(entry.ci_hi, entry.estimate);
  }
}

TEST(Query, TopKPartialRangeIsInexactButSound) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  std::map<double, int> range_truth;
  Rng rng(17);
  constexpr int kT1 = 500;
  constexpr int kT2 = 1500;
  for (int t = 1; t <= 4000; ++t) {
    double v = rng.NextBounded(100) < 50 ? 1.0 : 2.0;
    if (t >= kT1 && t <= kT2) {
      ++range_truth[v];
    }
    ASSERT_TRUE(stream.Append(t, v).ok());
  }
  QuerySpec spec{.t1 = kT1, .t2 = kT2, .op = QueryOp::kTopK, .top_k = 2};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->exact);
  ASSERT_GE(result->topk.size(), 1u);
  for (const auto& entry : result->topk) {
    double actual = range_truth[entry.value];
    // Partial windows contribute whole-window upper bounds and shed their
    // possible out-of-range mass from the lower bound; truth stays inside.
    EXPECT_LE(entry.ci_lo, actual) << "value " << entry.value;
    EXPECT_GE(entry.ci_hi, actual) << "value " << entry.value;
  }
}

TEST(Query, TopKWithoutOperatorFailsPrecondition) {
  MemoryBackend kv;
  StreamConfig config = FullConfig();
  config.operators.spacesaving = false;
  Stream stream(1, config, &kv);
  FillRegular(stream);
  QuerySpec spec{.t1 = 1, .t2 = 1000, .op = QueryOp::kTopK};
  EXPECT_EQ(RunQuery(stream, spec).status().code(), StatusCode::kFailedPrecondition);
}

TEST(Query, TopKZeroKRejected) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(), &kv);
  FillRegular(stream, 10);
  QuerySpec spec{.t1 = 1, .t2 = 10, .op = QueryOp::kTopK, .top_k = 0};
  EXPECT_EQ(RunQuery(stream, spec).status().code(), StatusCode::kInvalidArgument);
}

TEST(Query, TopKOnRawWindowsIsExact) {
  MemoryBackend kv;
  Stream stream(1, FullConfig(/*raw_threshold=*/64), &kv);
  for (int t = 990; t <= 1000; ++t) {
    ASSERT_TRUE(stream.Append(t, t <= 996 ? 5.0 : 6.0).ok());
  }
  QuerySpec spec{.t1 = 990, .t2 = 1000, .op = QueryOp::kTopK, .top_k = 2};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->topk.size(), 2u);
  EXPECT_DOUBLE_EQ(result->topk[0].value, 5.0);
  EXPECT_DOUBLE_EQ(result->topk[0].ci_lo, 7.0);
  EXPECT_DOUBLE_EQ(result->topk[0].ci_hi, 7.0);
  EXPECT_DOUBLE_EQ(result->topk[1].value, 6.0);
  EXPECT_DOUBLE_EQ(result->topk[1].ci_lo, 4.0);
}

}  // namespace
}  // namespace ss
