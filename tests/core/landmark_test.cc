// Landmark-window semantics (§4.3 / Figure 4): landmark data is stored in
// full, never decays, is hollowed out of the summarized windows' spans, and
// queries weave both sources into one seamless answer.
#include <gtest/gtest.h>

#include "src/core/query.h"
#include "src/core/stream.h"
#include "src/storage/memory_backend.h"

namespace ss {
namespace {

StreamConfig MakeConfig() {
  StreamConfig config;
  config.decay = std::make_shared<ExponentialDecay>(2.0, 1, 1);
  config.operators = OperatorSet::AggregatesOnly();
  config.raw_threshold = 0;  // materialize immediately: exercise estimation
  config.seed = 11;
  return config;
}

TEST(Landmark, BeginEndLifecycle) {
  MemoryBackend kv;
  Stream stream(1, MakeConfig(), &kv);
  EXPECT_FALSE(stream.in_landmark());
  ASSERT_TRUE(stream.BeginLandmark(10).ok());
  EXPECT_TRUE(stream.in_landmark());
  EXPECT_EQ(stream.BeginLandmark(11).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(stream.EndLandmark(20).ok());
  EXPECT_FALSE(stream.in_landmark());
  EXPECT_EQ(stream.EndLandmark(21).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(stream.landmark_window_count(), 1u);
}

TEST(Landmark, EventsRoutedToLandmarkNotSummaries) {
  MemoryBackend kv;
  Stream stream(1, MakeConfig(), &kv);
  for (Timestamp t = 1; t <= 2; ++t) {
    ASSERT_TRUE(stream.Append(t, static_cast<double>(t)).ok());
  }
  ASSERT_TRUE(stream.BeginLandmark(3).ok());
  for (Timestamp t = 3; t <= 5; ++t) {
    ASSERT_TRUE(stream.Append(t, static_cast<double>(t)).ok());
  }
  ASSERT_TRUE(stream.EndLandmark(5).ok());
  for (Timestamp t = 6; t <= 8; ++t) {
    ASSERT_TRUE(stream.Append(t, static_cast<double>(t)).ok());
  }
  // 5 summarized elements (1,2,6,7,8) + 3 landmark elements (3,4,5).
  EXPECT_EQ(stream.element_count(), 5u);
  EXPECT_EQ(stream.landmark_element_count(), 3u);

  auto lm_events = stream.QueryLandmarks(0, 100);
  ASSERT_EQ(lm_events.size(), 3u);
  EXPECT_EQ(lm_events[0].value, 3.0);
  EXPECT_EQ(lm_events[2].value, 5.0);
}

TEST(Landmark, Figure4FullRangeSumExact) {
  // The Figure 4 setup: values 1..8, {3,4,5} as landmarks. A Sum over the
  // whole span must still yield 36 — summaries (24) + landmarks (12).
  MemoryBackend kv;
  Stream stream(1, MakeConfig(), &kv);
  for (Timestamp t = 1; t <= 2; ++t) {
    ASSERT_TRUE(stream.Append(t, static_cast<double>(t)).ok());
  }
  ASSERT_TRUE(stream.BeginLandmark(3).ok());
  for (Timestamp t = 3; t <= 5; ++t) {
    ASSERT_TRUE(stream.Append(t, static_cast<double>(t)).ok());
  }
  ASSERT_TRUE(stream.EndLandmark(5).ok());
  for (Timestamp t = 6; t <= 8; ++t) {
    ASSERT_TRUE(stream.Append(t, static_cast<double>(t)).ok());
  }

  QuerySpec spec;
  spec.t1 = 1;
  spec.t2 = 8;
  spec.op = QueryOp::kSum;
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, 36.0, 1e-9);
  EXPECT_TRUE(result->exact);

  spec.op = QueryOp::kCount;
  result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, 8.0, 1e-9);
}

TEST(Landmark, QueryInsideLandmarkIsExact) {
  MemoryBackend kv;
  Stream stream(1, MakeConfig(), &kv);
  for (Timestamp t = 1; t <= 10; ++t) {
    ASSERT_TRUE(stream.Append(t, 1.0).ok());
  }
  ASSERT_TRUE(stream.BeginLandmark(11).ok());
  for (Timestamp t = 11; t <= 15; ++t) {
    ASSERT_TRUE(stream.Append(t, 100.0).ok());
  }
  ASSERT_TRUE(stream.EndLandmark(15).ok());
  for (Timestamp t = 16; t <= 30; ++t) {
    ASSERT_TRUE(stream.Append(t, 1.0).ok());
  }

  QuerySpec spec;
  spec.t1 = 12;
  spec.t2 = 14;
  spec.op = QueryOp::kSum;
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, 300.0, 1e-9);
  EXPECT_EQ(result->landmark_events, 3u);
}

TEST(Landmark, HollowingExcludesLandmarkSpanFromProportionalShare) {
  // One summarized window covering [0, 100) with count 50, with a landmark
  // covering [40, 60). A sub-query over the landmark-only region should get
  // nearly nothing from summaries; the proportional share applies only to
  // the hollowed span.
  MemoryBackend kv;
  StreamConfig config = MakeConfig();
  config.decay = std::make_shared<UniformDecay>(1000);  // one big window
  config.raw_threshold = 0;
  Stream stream(1, config, &kv);

  for (Timestamp t = 0; t < 40; ++t) {
    ASSERT_TRUE(stream.Append(t, 1.0).ok());
  }
  ASSERT_TRUE(stream.BeginLandmark(40).ok());
  for (Timestamp t = 40; t < 60; ++t) {
    ASSERT_TRUE(stream.Append(t, 2.0).ok());
  }
  ASSERT_TRUE(stream.EndLandmark(59).ok());
  for (Timestamp t = 60; t < 100; ++t) {
    ASSERT_TRUE(stream.Append(t, 1.0).ok());
  }

  // Query exactly the landmark interval: exact landmark enumeration (40
  // events of value 2) and zero proportional leakage from summaries.
  QuerySpec spec;
  spec.t1 = 40;
  spec.t2 = 59;
  spec.op = QueryOp::kSum;
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->estimate, 40.0, 1.0);

  // Query half the summarized region plus the landmark: proportional share
  // of the summarized span + exact landmarks.
  spec.t1 = 20;
  spec.t2 = 59;
  auto mixed = RunQuery(stream, spec);
  ASSERT_TRUE(mixed.ok());
  // True answer: 20 summarized events (value 1) + 40 landmark = 60.
  EXPECT_NEAR(mixed->estimate, 60.0, 8.0);
  EXPECT_GE(mixed->ci_hi, mixed->estimate);
}

TEST(Landmark, PersistAndReload) {
  MemoryBackend kv;
  {
    Stream stream(1, MakeConfig(), &kv);
    ASSERT_TRUE(stream.Append(1, 1.0).ok());
    ASSERT_TRUE(stream.BeginLandmark(2).ok());
    ASSERT_TRUE(stream.Append(2, 99.0).ok());
    ASSERT_TRUE(stream.EndLandmark(2).ok());
    ASSERT_TRUE(stream.Append(3, 3.0).ok());
    ASSERT_TRUE(stream.Flush().ok());
  }
  auto reloaded = Stream::Load(1, &kv);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ((*reloaded)->landmark_window_count(), 1u);
  EXPECT_EQ((*reloaded)->landmark_element_count(), 1u);
  auto events = (*reloaded)->QueryLandmarks(0, 10);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].value, 99.0);
}

TEST(Landmark, OpenLandmarkSurvivesReload) {
  MemoryBackend kv;
  {
    Stream stream(1, MakeConfig(), &kv);
    ASSERT_TRUE(stream.Append(1, 1.0).ok());
    ASSERT_TRUE(stream.BeginLandmark(2).ok());
    ASSERT_TRUE(stream.Append(2, 50.0).ok());
    ASSERT_TRUE(stream.Flush().ok());
  }
  auto reloaded = Stream::Load(1, &kv);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE((*reloaded)->in_landmark());
  ASSERT_TRUE((*reloaded)->Append(3, 51.0).ok());
  ASSERT_TRUE((*reloaded)->EndLandmark(3).ok());
  EXPECT_EQ((*reloaded)->landmark_element_count(), 2u);

  // Regression: events appended into a *reloaded* open landmark must be
  // re-persisted on the next flush (the reloaded landmark is dirty).
  ASSERT_TRUE((*reloaded)->Flush().ok());
  auto reloaded_again = Stream::Load(1, &kv);
  ASSERT_TRUE(reloaded_again.ok());
  auto events = (*reloaded_again)->QueryLandmarks(0, 10);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].value, 51.0);
}

}  // namespace
}  // namespace ss
