#include <gtest/gtest.h>

#include <cmath>

#include "src/core/decay.h"

namespace ss {
namespace {

TEST(PowerLawDecay, LengthSequence1111) {
  // PowerLaw(1,1,1,1) defines target sizes 1,2,3,4,... (§4.1).
  PowerLawDecay decay(1, 1, 1, 1);
  for (uint64_t k = 0; k < 20; ++k) {
    EXPECT_EQ(decay.WindowLength(k), k + 1) << k;
  }
}

TEST(PowerLawDecay, ThrottleRRepeatsLengths) {
  // PowerLaw(1,1,16,1): 16 windows of each length 1,2,3,...
  PowerLawDecay decay(1, 1, 16, 1);
  for (uint64_t k = 0; k < 16; ++k) {
    EXPECT_EQ(decay.WindowLength(k), 1u);
  }
  for (uint64_t k = 16; k < 32; ++k) {
    EXPECT_EQ(decay.WindowLength(k), 2u);
  }
}

TEST(PowerLawDecay, QuadraticGrowth) {
  // PowerLaw(1,2,1,1): lengths 1,4,9,16,...
  PowerLawDecay decay(1, 2, 1, 1);
  for (uint64_t k = 0; k < 10; ++k) {
    EXPECT_EQ(decay.WindowLength(k), (k + 1) * (k + 1));
  }
}

TEST(PowerLawDecay, PGreaterThanOneGrowsGroupCounts) {
  // PowerLaw(2,1,1,1): group j has j windows of length j.
  PowerLawDecay decay(2, 1, 1, 1);
  EXPECT_EQ(decay.WindowLength(0), 1u);   // group 1: 1 window of len 1
  EXPECT_EQ(decay.WindowLength(1), 2u);   // group 2: 2 windows of len 2
  EXPECT_EQ(decay.WindowLength(2), 2u);
  EXPECT_EQ(decay.WindowLength(3), 3u);   // group 3: 3 windows of len 3
  EXPECT_EQ(decay.WindowLength(5), 3u);
  EXPECT_EQ(decay.WindowLength(6), 4u);
}

TEST(ExponentialDecay, ClassicDoubling) {
  ExponentialDecay decay(2.0, 1, 1);
  uint64_t expected = 1;
  for (uint64_t k = 0; k < 20; ++k) {
    EXPECT_EQ(decay.WindowLength(k), expected) << k;
    expected *= 2;
  }
}

TEST(ExponentialDecay, ThrottledRepeats) {
  ExponentialDecay decay(2.0, 3, 5);
  EXPECT_EQ(decay.WindowLength(0), 5u);
  EXPECT_EQ(decay.WindowLength(2), 5u);
  EXPECT_EQ(decay.WindowLength(3), 10u);
  EXPECT_EQ(decay.WindowLength(6), 20u);
}

TEST(UniformDecay, ConstantLengths) {
  UniformDecay decay(7);
  for (uint64_t k = 0; k < 100; k += 13) {
    EXPECT_EQ(decay.WindowLength(k), 7u);
  }
}

TEST(DecaySerde, RoundTripAllKinds) {
  std::vector<std::unique_ptr<DecayFunction>> decays;
  decays.push_back(std::make_unique<PowerLawDecay>(1, 2, 48, 1));
  decays.push_back(std::make_unique<ExponentialDecay>(3.0, 2, 5));
  decays.push_back(std::make_unique<UniformDecay>(64));
  for (const auto& decay : decays) {
    Writer w;
    decay->Serialize(w);
    Reader r(w.data());
    auto restored = DeserializeDecay(r);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ((*restored)->Describe(), decay->Describe());
    for (uint64_t k = 0; k < 30; ++k) {
      EXPECT_EQ((*restored)->WindowLength(k), decay->WindowLength(k));
    }
  }
}

TEST(DecaySequence, BoundariesArePrefixSums) {
  DecaySequence seq(std::make_shared<PowerLawDecay>(1, 1, 1, 1));
  EXPECT_EQ(seq.BucketBoundary(0), 0u);
  EXPECT_EQ(seq.BucketBoundary(1), 1u);
  EXPECT_EQ(seq.BucketBoundary(2), 3u);
  EXPECT_EQ(seq.BucketBoundary(3), 6u);
  EXPECT_EQ(seq.BucketBoundary(10), 55u);
}

TEST(DecaySequence, FirstBucketWithLengthAtLeast) {
  DecaySequence seq(std::make_shared<ExponentialDecay>(2.0, 1, 1));  // 1,2,4,8,...
  EXPECT_EQ(seq.FirstBucketWithLengthAtLeast(1), 0u);
  EXPECT_EQ(seq.FirstBucketWithLengthAtLeast(2), 1u);
  EXPECT_EQ(seq.FirstBucketWithLengthAtLeast(3), 2u);
  EXPECT_EQ(seq.FirstBucketWithLengthAtLeast(5), 3u);
  EXPECT_EQ(seq.FirstBucketWithLengthAtLeast(1024), 10u);
}

TEST(DecaySequence, NonGrowingDecayReportsNoBucket) {
  DecaySequence seq(std::make_shared<UniformDecay>(4));
  EXPECT_EQ(seq.FirstBucketWithLengthAtLeast(4), 0u);
  EXPECT_EQ(seq.FirstBucketWithLengthAtLeast(5), DecaySequence::kNoBucket);
}

TEST(DecaySequence, WindowCountGrowthMatchesTable4) {
  // PowerLaw(1,1,1,1): W(N) ~ sqrt(2N) — store grows as Θ(√N) (Table 4).
  DecaySequence seq(std::make_shared<PowerLawDecay>(1, 1, 1, 1));
  for (uint64_t n : {10000ULL, 1000000ULL, 100000000ULL}) {
    double w = static_cast<double>(seq.WindowCountFor(n));
    EXPECT_NEAR(w, std::sqrt(2.0 * static_cast<double>(n)), w * 0.02) << n;
  }
}

TEST(DecaySequence, ExponentialWindowCountLogarithmic) {
  DecaySequence seq(std::make_shared<ExponentialDecay>(2.0, 1, 1));
  // Covering 2^k - 1 elements takes exactly k windows.
  EXPECT_EQ(seq.WindowCountFor((1 << 20) - 1), 20u);
  EXPECT_EQ(seq.WindowCountFor(1 << 20), 21u);
}

TEST(DecaySequence, Table5CompactionRatios) {
  // Table 5: with PowerLaw(1,1,1,1), growing raw data 100x (10GB -> 1000GB)
  // grows the store 10x, i.e. compaction improves 10x (10x -> 100x).
  DecaySequence seq(std::make_shared<PowerLawDecay>(1, 1, 1, 1));
  uint64_t n_10gb = 10ULL * (1 << 30) / 16;
  uint64_t n_1000gb = 1000ULL * (1 << 30) / 16;
  double w_small = static_cast<double>(seq.WindowCountFor(n_10gb));
  double w_large = static_cast<double>(seq.WindowCountFor(n_1000gb));
  // Raw grew 100x; windows grew ~10x; compaction ratio improves ~10x.
  EXPECT_NEAR(w_large / w_small, 10.0, 0.2);

  // PowerLaw(1,1,16,1) stores sqrt(16)=4x more windows than (1,1,1,1).
  DecaySequence throttled(std::make_shared<PowerLawDecay>(1, 1, 16, 1));
  double w_throttled = static_cast<double>(throttled.WindowCountFor(n_10gb));
  EXPECT_NEAR(w_throttled / w_small, 4.0, 0.1);
}

}  // namespace
}  // namespace ss
