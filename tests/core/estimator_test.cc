// Unit tests for the Table 6 / Appendix B estimators, checked directly
// against the paper's formulas.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/estimator.h"

namespace ss {
namespace {

StreamStats MakeStats(double mu_t, double sigma_t, double mu_v, double sigma_v, int64_t n = 1000) {
  StreamStats stats;
  // Construct accumulators with the desired moments (population variance).
  stats.interarrival = WelfordAccumulator::FromParts(n, mu_t, sigma_t * sigma_t * n);
  stats.values = WelfordAccumulator::FromParts(n, mu_v, sigma_v * sigma_v * n);
  return stats;
}

TEST(CountEstimator, ProportionalMean) {
  // Theorem B.1: E[count(sub)] = C * t/T.
  StreamStats stats = MakeStats(1.0, 1.0, 0.0, 1.0);
  MeanVar est = EstimateSubWindowCount(1000, 0.3, stats, ArrivalModel::kGeneric);
  EXPECT_DOUBLE_EQ(est.mean, 300.0);
}

TEST(CountEstimator, PoissonVarianceIsBinomial) {
  // Theorem B.2: Binomial(C, f) variance = C f (1-f).
  StreamStats stats = MakeStats(1.0, 1.0, 0.0, 1.0);
  MeanVar est = EstimateSubWindowCount(400, 0.25, stats, ArrivalModel::kPoisson);
  EXPECT_DOUBLE_EQ(est.variance, 400 * 0.25 * 0.75);
}

TEST(CountEstimator, GenericVarianceScalesWithCv2) {
  // Theorem B.3 with T/µt ≈ C: var = (σt/µt)² C f(1-f).
  StreamStats noisy = MakeStats(2.0, 4.0, 0.0, 1.0);  // cv² = 4
  MeanVar est = EstimateSubWindowCount(100, 0.5, noisy, ArrivalModel::kGeneric);
  EXPECT_DOUBLE_EQ(est.variance, 4.0 * 100 * 0.25);
  // A Poisson-like stream (cv=1) reduces to the Binomial variance.
  StreamStats poissonish = MakeStats(2.0, 2.0, 0.0, 1.0);
  MeanVar est2 = EstimateSubWindowCount(100, 0.5, poissonish, ArrivalModel::kGeneric);
  EXPECT_DOUBLE_EQ(est2.variance, 100 * 0.25);
}

TEST(CountEstimator, VarianceVanishesAtEdges) {
  // Figure 12: error is largest mid-window and 0 at either edge.
  StreamStats stats = MakeStats(1.0, 1.0, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(EstimateSubWindowCount(100, 0.0, stats, ArrivalModel::kGeneric).variance, 0.0);
  EXPECT_DOUBLE_EQ(EstimateSubWindowCount(100, 1.0, stats, ArrivalModel::kGeneric).variance, 0.0);
  double mid = EstimateSubWindowCount(100, 0.5, stats, ArrivalModel::kGeneric).variance;
  double quarter = EstimateSubWindowCount(100, 0.25, stats, ArrivalModel::kGeneric).variance;
  EXPECT_GT(mid, quarter);
}

TEST(CountEstimator, EllipticalProfile) {
  // CI width ∝ sqrt(f(1-f)) — symmetric around f = 0.5.
  StreamStats stats = MakeStats(1.0, 1.0, 0.0, 1.0);
  double v_03 = EstimateSubWindowCount(100, 0.3, stats, ArrivalModel::kGeneric).variance;
  double v_07 = EstimateSubWindowCount(100, 0.7, stats, ArrivalModel::kGeneric).variance;
  EXPECT_NEAR(v_03, v_07, 1e-12);
}

TEST(SumEstimator, MatchesTheoremB3) {
  // var = ((σt/µt)²µv² + σv²)·C·f(1-f).
  double mu_t = 2.0, sigma_t = 3.0, mu_v = 5.0, sigma_v = 7.0;
  StreamStats stats = MakeStats(mu_t, sigma_t, mu_v, sigma_v);
  double c = 200, f = 0.4;
  MeanVar est = EstimateSubWindowSum(1000.0, c, f, stats, ArrivalModel::kGeneric);
  EXPECT_DOUBLE_EQ(est.mean, 400.0);
  double cv2 = (sigma_t / mu_t) * (sigma_t / mu_t);
  EXPECT_NEAR(est.variance, (cv2 * mu_v * mu_v + sigma_v * sigma_v) * c * f * (1 - f), 1e-9);
}

TEST(FrequencyEstimator, HypergeometricMoments) {
  // Theorem B.5: mean = V·f; variance includes hypergeometric inner term
  // plus count-posterior propagation.
  double c = 1000, v = 50, f = 0.3;
  MeanVar count_est{c * f, c * f * (1 - f)};
  MeanVar est = EstimateSubWindowFrequency(c, v, f, count_est.variance);
  EXPECT_DOUBLE_EQ(est.mean, 15.0);
  double ct = c * f;
  double inner = v * f * (1 - f) * (c - ct) / (c - 1);
  double outer = (v / c) * (v / c) * count_est.variance;
  EXPECT_NEAR(est.variance, inner + outer, 1e-9);
}

TEST(FrequencyEstimator, DegenerateCases) {
  EXPECT_EQ(EstimateSubWindowFrequency(1, 1, 0.5, 0).variance, 0.0);
  EXPECT_EQ(EstimateSubWindowFrequency(100, 0, 0.5, 10).mean, 0.0);
}

TEST(Membership, TheoremB4Probability) {
  // Pr(v ∈ sub) = 1 − (1 − f)^V.
  EXPECT_DOUBLE_EQ(MembershipProbability(0.25, 1), 0.25);
  EXPECT_NEAR(MembershipProbability(0.25, 2), 1 - 0.75 * 0.75, 1e-12);
  EXPECT_NEAR(MembershipProbability(0.01, 1000), 1.0, 1e-4);  // almost surely present
  EXPECT_EQ(MembershipProbability(0.5, 0), 0.0);
}

TEST(Intervals, NormalIntervalCoversMean) {
  Interval ci = NormalInterval(10.0, 20.0, 25.0, 0.95);
  EXPECT_NEAR((ci.lo + ci.hi) / 2.0, 30.0, 1e-9);
  EXPECT_NEAR(ci.hi - ci.lo, 2 * 1.959963984540054 * 5.0, 1e-6);
  // Degenerate variance -> point interval.
  Interval point = NormalInterval(10.0, 20.0, 0.0, 0.95);
  EXPECT_EQ(point.lo, point.hi);
}

TEST(Intervals, BinomialIntervalExact) {
  Interval ci = BinomialInterval(5.0, 100, 0.5, 0.95);
  // Binomial(100, 0.5) 2.5% and 97.5% quantiles are 40 and 60.
  EXPECT_DOUBLE_EQ(ci.lo, 5.0 + 40.0);
  EXPECT_DOUBLE_EQ(ci.hi, 5.0 + 60.0);
}

TEST(Intervals, WidthShrinksWithConfidence) {
  Interval wide = NormalInterval(0, 0, 100.0, 0.99);
  Interval narrow = NormalInterval(0, 0, 100.0, 0.80);
  EXPECT_GT(wide.hi - wide.lo, narrow.hi - narrow.lo);
}

}  // namespace
}  // namespace ss
