// Unit tests for the Table 6 / Appendix B estimators, checked directly
// against the paper's formulas.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/estimator.h"

namespace ss {
namespace {

StreamStats MakeStats(double mu_t, double sigma_t, double mu_v, double sigma_v, int64_t n = 1000) {
  StreamStats stats;
  // Construct accumulators with the desired moments (population variance).
  stats.interarrival = WelfordAccumulator::FromParts(n, mu_t, sigma_t * sigma_t * n);
  stats.values = WelfordAccumulator::FromParts(n, mu_v, sigma_v * sigma_v * n);
  return stats;
}

TEST(CountEstimator, ProportionalMean) {
  // Theorem B.1: E[count(sub)] = C * t/T.
  StreamStats stats = MakeStats(1.0, 1.0, 0.0, 1.0);
  MeanVar est = EstimateSubWindowCount(1000, 0.3, stats, ArrivalModel::kGeneric);
  EXPECT_DOUBLE_EQ(est.mean, 300.0);
}

TEST(CountEstimator, PoissonVarianceIsBinomial) {
  // Theorem B.2: Binomial(C, f) variance = C f (1-f).
  StreamStats stats = MakeStats(1.0, 1.0, 0.0, 1.0);
  MeanVar est = EstimateSubWindowCount(400, 0.25, stats, ArrivalModel::kPoisson);
  EXPECT_DOUBLE_EQ(est.variance, 400 * 0.25 * 0.75);
}

TEST(CountEstimator, GenericVarianceScalesWithCv2) {
  // Theorem B.3 with T/µt ≈ C: var = (σt/µt)² C f(1-f).
  StreamStats noisy = MakeStats(2.0, 4.0, 0.0, 1.0);  // cv² = 4
  MeanVar est = EstimateSubWindowCount(100, 0.5, noisy, ArrivalModel::kGeneric);
  EXPECT_DOUBLE_EQ(est.variance, 4.0 * 100 * 0.25);
  // A Poisson-like stream (cv=1) reduces to the Binomial variance.
  StreamStats poissonish = MakeStats(2.0, 2.0, 0.0, 1.0);
  MeanVar est2 = EstimateSubWindowCount(100, 0.5, poissonish, ArrivalModel::kGeneric);
  EXPECT_DOUBLE_EQ(est2.variance, 100 * 0.25);
}

TEST(CountEstimator, VarianceVanishesAtEdges) {
  // Figure 12: error is largest mid-window and 0 at either edge.
  StreamStats stats = MakeStats(1.0, 1.0, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(EstimateSubWindowCount(100, 0.0, stats, ArrivalModel::kGeneric).variance, 0.0);
  EXPECT_DOUBLE_EQ(EstimateSubWindowCount(100, 1.0, stats, ArrivalModel::kGeneric).variance, 0.0);
  double mid = EstimateSubWindowCount(100, 0.5, stats, ArrivalModel::kGeneric).variance;
  double quarter = EstimateSubWindowCount(100, 0.25, stats, ArrivalModel::kGeneric).variance;
  EXPECT_GT(mid, quarter);
}

TEST(CountEstimator, EllipticalProfile) {
  // CI width ∝ sqrt(f(1-f)) — symmetric around f = 0.5.
  StreamStats stats = MakeStats(1.0, 1.0, 0.0, 1.0);
  double v_03 = EstimateSubWindowCount(100, 0.3, stats, ArrivalModel::kGeneric).variance;
  double v_07 = EstimateSubWindowCount(100, 0.7, stats, ArrivalModel::kGeneric).variance;
  EXPECT_NEAR(v_03, v_07, 1e-12);
}

TEST(SumEstimator, MatchesTheoremB3) {
  // var = ((σt/µt)²µv² + σv²)·C·f(1-f).
  double mu_t = 2.0, sigma_t = 3.0, mu_v = 5.0, sigma_v = 7.0;
  StreamStats stats = MakeStats(mu_t, sigma_t, mu_v, sigma_v);
  double c = 200, f = 0.4;
  MeanVar est = EstimateSubWindowSum(1000.0, c, f, stats, ArrivalModel::kGeneric);
  EXPECT_DOUBLE_EQ(est.mean, 400.0);
  double cv2 = (sigma_t / mu_t) * (sigma_t / mu_t);
  EXPECT_NEAR(est.variance, (cv2 * mu_v * mu_v + sigma_v * sigma_v) * c * f * (1 - f), 1e-9);
}

TEST(FrequencyEstimator, HypergeometricMoments) {
  // Theorem B.5: mean = V·f; variance includes hypergeometric inner term
  // plus count-posterior propagation.
  double c = 1000, v = 50, f = 0.3;
  MeanVar count_est{c * f, c * f * (1 - f)};
  MeanVar est = EstimateSubWindowFrequency(c, v, f, count_est.variance);
  EXPECT_DOUBLE_EQ(est.mean, 15.0);
  double ct = c * f;
  double inner = v * f * (1 - f) * (c - ct) / (c - 1);
  double outer = (v / c) * (v / c) * count_est.variance;
  EXPECT_NEAR(est.variance, inner + outer, 1e-9);
}

TEST(FrequencyEstimator, DegenerateCases) {
  // A value absent from the whole window is certainly absent from the
  // sub-window: point mass at 0.
  EXPECT_EQ(EstimateSubWindowFrequency(100, 0, 0.5, 10).mean, 0.0);
  EXPECT_EQ(EstimateSubWindowFrequency(100, 0, 0.5, 10).variance, 0.0);
  // At the overlap edges there is no boundary to be uncertain about.
  EXPECT_EQ(EstimateSubWindowFrequency(1, 1, 0.0, 0).variance, 0.0);
  EXPECT_EQ(EstimateSubWindowFrequency(1, 1, 1.0, 0).variance, 0.0);
}

TEST(FrequencyEstimator, SingleElementWindowKeepsBoundaryFloor) {
  // count <= 1 degenerates the hypergeometric term, but a partial overlap
  // still cannot pin down whether the single occurrence falls inside: the
  // posterior keeps at least Bernoulli(f) variance instead of emitting a
  // zero-variance point interval that misses half the time.
  MeanVar est = EstimateSubWindowFrequency(1, 1, 0.5, 0);
  EXPECT_DOUBLE_EQ(est.mean, 0.5);
  EXPECT_DOUBLE_EQ(est.variance, 0.5 * 0.5);
  // The floor also backstops multi-element windows whose propagated count
  // variance is tiny.
  MeanVar multi = EstimateSubWindowFrequency(100, 1, 0.3, 0.0);
  EXPECT_GE(multi.variance, 0.3 * 0.7);
}

TEST(Membership, TheoremB4Probability) {
  // Pr(v ∈ sub) = 1 − (1 − f)^V.
  EXPECT_DOUBLE_EQ(MembershipProbability(0.25, 1), 0.25);
  EXPECT_NEAR(MembershipProbability(0.25, 2), 1 - 0.75 * 0.75, 1e-12);
  EXPECT_NEAR(MembershipProbability(0.01, 1000), 1.0, 1e-4);  // almost surely present
  EXPECT_EQ(MembershipProbability(0.5, 0), 0.0);
}

TEST(Intervals, NormalIntervalCoversMean) {
  Interval ci = NormalInterval(10.0, 20.0, 25.0, 0.95);
  EXPECT_NEAR((ci.lo + ci.hi) / 2.0, 30.0, 1e-9);
  EXPECT_NEAR(ci.hi - ci.lo, 2 * 1.959963984540054 * 5.0, 1e-6);
  // Degenerate variance -> point interval.
  Interval point = NormalInterval(10.0, 20.0, 0.0, 0.95);
  EXPECT_EQ(point.lo, point.hi);
}

TEST(Intervals, NormalIntervalFloorAtZeroKeepsExactPart) {
  // Unfloored: lo = 12 - 1.96*10 ≈ -7.6, well below the exact part.
  Interval unfloored = NormalInterval(10.0, 2.0, 100.0, 0.95);
  EXPECT_LT(unfloored.lo, 10.0);
  // Floored: the estimated part contributes >= 0, so lo snaps to exact and
  // the upper bound is untouched.
  Interval floored = NormalInterval(10.0, 2.0, 100.0, 0.95, /*floor_at_zero=*/true);
  EXPECT_DOUBLE_EQ(floored.lo, 10.0);
  EXPECT_DOUBLE_EQ(floored.hi, unfloored.hi);
  // A lower bound already above exact is left alone.
  Interval slack = NormalInterval(10.0, 50.0, 1.0, 0.95, /*floor_at_zero=*/true);
  EXPECT_GT(slack.lo, 10.0);
}

TEST(Intervals, BinomialIntervalExact) {
  Interval ci = BinomialInterval(5.0, 100, 0.5, 0.95);
  // Binomial(100, 0.5) 2.5% and 97.5% quantiles are 40 and 60.
  EXPECT_DOUBLE_EQ(ci.lo, 5.0 + 40.0);
  EXPECT_DOUBLE_EQ(ci.hi, 5.0 + 60.0);
}

TEST(Intervals, BinomialIntervalHandComputedQuantiles) {
  // Binomial(4, 0.5), 90% CI -> quantiles at 0.05 and 0.95.
  // CDF: P(X<=0)=1/16=0.0625, P(X<=3)=15/16=0.9375.
  // Q(0.05): smallest k with CDF >= 0.05 is 0; Q(0.95): smallest k with
  // CDF >= 0.95 is 4.
  Interval ci = BinomialInterval(2.0, 4, 0.5, 0.90);
  EXPECT_DOUBLE_EQ(ci.lo, 2.0 + 0.0);
  EXPECT_DOUBLE_EQ(ci.hi, 2.0 + 4.0);
  // Binomial(2, 0.5), 50% CI -> quantiles at 0.25 and 0.75.
  // CDF: P(X<=0)=0.25, P(X<=1)=0.75 -> Q(0.25)=0, Q(0.75)=1.
  Interval ci2 = BinomialInterval(0.0, 2, 0.5, 0.50);
  EXPECT_DOUBLE_EQ(ci2.lo, 0.0);
  EXPECT_DOUBLE_EQ(ci2.hi, 1.0);
}

TEST(Intervals, BinomialIntervalDegenerateInputs) {
  // n == 0: no draws, the estimated part is certainly 0.
  Interval none = BinomialInterval(7.0, 0, 0.5, 0.95);
  EXPECT_DOUBLE_EQ(none.lo, 7.0);
  EXPECT_DOUBLE_EQ(none.hi, 7.0);
  // p == 0: every draw misses.
  Interval never = BinomialInterval(7.0, 50, 0.0, 0.95);
  EXPECT_DOUBLE_EQ(never.lo, 7.0);
  EXPECT_DOUBLE_EQ(never.hi, 7.0);
  // p == 1: every draw hits.
  Interval always = BinomialInterval(7.0, 50, 1.0, 0.95);
  EXPECT_DOUBLE_EQ(always.lo, 57.0);
  EXPECT_DOUBLE_EQ(always.hi, 57.0);
  // Out-of-range p is clamped, not trusted.
  Interval clamped_hi = BinomialInterval(0.0, 10, 1.5, 0.95);
  EXPECT_DOUBLE_EQ(clamped_hi.lo, 10.0);
  Interval clamped_lo = BinomialInterval(0.0, 10, -0.5, 0.95);
  EXPECT_DOUBLE_EQ(clamped_lo.hi, 0.0);
}

TEST(Intervals, WidthShrinksWithConfidence) {
  Interval wide = NormalInterval(0, 0, 100.0, 0.99);
  Interval narrow = NormalInterval(0, 0, 100.0, 0.80);
  EXPECT_GT(wide.hi - wide.lo, narrow.hi - narrow.lo);
}

}  // namespace
}  // namespace ss
