// Tests for Algorithm 1 (window-merge ingest), including an exact replay of
// the paper's Figure 3 trace: the stream 1,2,3,... ingested under
// exponential [1,2,4,8,...] windowing.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/core/stream.h"
#include "src/sketch/aggregates.h"
#include "src/storage/memory_backend.h"

namespace ss {
namespace {

struct WindowSnapshot {
  uint64_t cs;
  uint64_t ce;
  double sum;
};

StreamConfig MakeConfig(std::shared_ptr<const DecayFunction> decay, uint64_t raw_threshold = 4) {
  StreamConfig config;
  config.decay = std::move(decay);
  config.operators = OperatorSet::AggregatesOnly();
  config.raw_threshold = raw_threshold;
  config.seed = 7;
  return config;
}

double WindowSum(const SummaryWindow& window) {
  if (window.is_raw()) {
    double sum = 0;
    for (const Event& event : window.raw()) {
      sum += event.value;
    }
    return sum;
  }
  const auto* sum = SummaryCast<SumSummary>(window.Find(SummaryKind::kSum));
  EXPECT_NE(sum, nullptr);
  return sum == nullptr ? 0 : sum->sum();
}

std::vector<WindowSnapshot> Snapshot(Stream& stream) {
  auto views = stream.WindowsOverlapping(kMinTimestamp / 2, kMaxTimestamp / 2);
  EXPECT_TRUE(views.ok());
  std::vector<WindowSnapshot> out;
  for (const auto& view : *views) {
    out.push_back(WindowSnapshot{view.window->cs(), view.window->ce(), WindowSum(*view.window)});
  }
  return out;
}

void ExpectLayout(Stream& stream, const std::vector<WindowSnapshot>& expected) {
  auto actual = Snapshot(stream);
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].cs, expected[i].cs) << "window " << i;
    EXPECT_EQ(actual[i].ce, expected[i].ce) << "window " << i;
    EXPECT_DOUBLE_EQ(actual[i].sum, expected[i].sum) << "window " << i;
  }
}

TEST(MergeAlgorithm, Figure3ExactTrace) {
  MemoryBackend kv;
  Stream stream(1, MakeConfig(std::make_shared<ExponentialDecay>(2.0, 1, 1)), &kv);
  auto append_to = [&](uint64_t n_target, uint64_t from) {
    for (uint64_t v = from; v <= n_target; ++v) {
      ASSERT_TRUE(stream.Append(static_cast<Timestamp>(v), static_cast<double>(v)).ok());
    }
  };

  // After 3 inserts: W3, W2-1 (Figure 3 row 3).
  append_to(3, 1);
  ExpectLayout(stream, {{1, 2, 3}, {3, 3, 3}});

  // After 5 inserts: W5, W4-3, W2-1.
  append_to(5, 4);
  ExpectLayout(stream, {{1, 2, 3}, {3, 4, 7}, {5, 5, 5}});

  // After 7 inserts: W7, W6-5, W4-1.
  append_to(7, 6);
  ExpectLayout(stream, {{1, 4, 10}, {5, 6, 11}, {7, 7, 7}});

  // After 15 inserts: W15, W14-13, W12-9, W8-1 (Figure 3 last row).
  append_to(15, 8);
  ExpectLayout(stream, {{1, 8, 36}, {9, 12, 42}, {13, 14, 27}, {15, 15, 15}});
}

TEST(MergeAlgorithm, ExponentialWindowCountLogarithmic) {
  MemoryBackend kv;
  Stream stream(1, MakeConfig(std::make_shared<ExponentialDecay>(2.0, 1, 1)), &kv);
  uint64_t n = 1 << 14;
  for (uint64_t v = 1; v <= n; ++v) {
    ASSERT_TRUE(stream.Append(static_cast<Timestamp>(v), 1.0).ok());
  }
  // Θ(log N) windows after N inserts (Figure 3 caption).
  EXPECT_LE(stream.window_count(), 2 * 14u + 2);
  EXPECT_GE(stream.window_count(), 14u / 2);
}

TEST(MergeAlgorithm, PowerLawWindowCountSqrt) {
  MemoryBackend kv;
  Stream stream(1, MakeConfig(std::make_shared<PowerLawDecay>(1, 1, 1, 1)), &kv);
  uint64_t n = 100000;
  for (uint64_t v = 1; v <= n; ++v) {
    ASSERT_TRUE(stream.Append(static_cast<Timestamp>(v), 1.0).ok());
  }
  double expected = std::sqrt(2.0 * static_cast<double>(n));
  EXPECT_NEAR(static_cast<double>(stream.window_count()), expected, expected * 0.5);
}

class MergeInvariants : public ::testing::TestWithParam<int> {};

TEST_P(MergeInvariants, WindowsTileCountSpaceAndPreserveAggregates) {
  MemoryBackend kv;
  std::shared_ptr<const DecayFunction> decay;
  switch (GetParam() % 4) {
    case 0:
      decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
      break;
    case 1:
      decay = std::make_shared<PowerLawDecay>(1, 2, 5, 1);
      break;
    case 2:
      decay = std::make_shared<ExponentialDecay>(2.0, 4, 1);
      break;
    default:
      decay = std::make_shared<PowerLawDecay>(1, 1, 16, 1);
      break;
  }
  Stream stream(1, MakeConfig(decay, /*raw_threshold=*/8), &kv);
  uint64_t n = 3000 + static_cast<uint64_t>(GetParam()) * 791;
  double total = 0;
  for (uint64_t v = 1; v <= n; ++v) {
    double value = static_cast<double>(v % 13);
    total += value;
    ASSERT_TRUE(stream.Append(static_cast<Timestamp>(v * 3), value).ok());
  }
  auto snapshot = Snapshot(stream);
  ASSERT_FALSE(snapshot.empty());
  // Tiling: contiguous, gapless count ranges covering [1, n].
  EXPECT_EQ(snapshot.front().cs, 1u);
  EXPECT_EQ(snapshot.back().ce, n);
  double sum = 0;
  for (size_t i = 0; i < snapshot.size(); ++i) {
    if (i > 0) {
      EXPECT_EQ(snapshot[i].cs, snapshot[i - 1].ce + 1);
    }
    sum += snapshot[i].sum;
  }
  EXPECT_NEAR(sum, total, 1e-6);
  EXPECT_EQ(stream.element_count(), n);
}

TEST_P(MergeInvariants, WindowLengthsRespectDecayEnvelope) {
  // Every window's length must be at most the length of the largest decay
  // bucket that could contain data of its age (within one merge step).
  MemoryBackend kv;
  auto decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  DecaySequence seq(decay);
  Stream stream(1, MakeConfig(decay, 8), &kv);
  uint64_t n = 5000 + static_cast<uint64_t>(GetParam()) * 311;
  for (uint64_t v = 1; v <= n; ++v) {
    ASSERT_TRUE(stream.Append(static_cast<Timestamp>(v), 1.0).ok());
  }
  auto snapshot = Snapshot(stream);
  for (const auto& w : snapshot) {
    uint64_t age_newest = n - w.ce;  // age of the window's newest element
    uint64_t bucket = seq.WindowCountFor(age_newest + 1);  // bucket index containing that age
    uint64_t len = w.ce - w.cs + 1;
    // A window can span at most two adjacent target buckets' worth of data
    // transiently; in steady state it fits one. Allow the transient.
    uint64_t limit = seq.WindowLength(bucket) + seq.WindowLength(bucket + 1);
    EXPECT_LE(len, limit) << "window [" << w.cs << "," << w.ce << "] age " << age_newest;
  }
}

INSTANTIATE_TEST_SUITE_P(Decays, MergeInvariants, ::testing::Range(0, 8));

TEST(MergeAlgorithm, UniformDecayNeverMergesPastLength) {
  MemoryBackend kv;
  Stream stream(1, MakeConfig(std::make_shared<UniformDecay>(10), 16), &kv);
  for (uint64_t v = 1; v <= 1000; ++v) {
    ASSERT_TRUE(stream.Append(static_cast<Timestamp>(v), 1.0).ok());
  }
  auto snapshot = Snapshot(stream);
  for (const auto& w : snapshot) {
    EXPECT_LE(w.ce - w.cs + 1, 10u);
  }
  EXPECT_GE(snapshot.size(), 100u);
}

TEST(MergeAlgorithm, OutOfOrderAppendRejected) {
  MemoryBackend kv;
  Stream stream(1, MakeConfig(std::make_shared<PowerLawDecay>(1, 1, 1, 1)), &kv);
  ASSERT_TRUE(stream.Append(100, 1.0).ok());
  EXPECT_EQ(stream.Append(99, 1.0).code(), StatusCode::kInvalidArgument);
  // Equal timestamps are allowed (quantized high-rate arrivals).
  EXPECT_TRUE(stream.Append(100, 2.0).ok());
}

TEST(MergeAlgorithm, MergeCountIsAmortizedConstant) {
  MemoryBackend kv;
  Stream stream(1, MakeConfig(std::make_shared<PowerLawDecay>(1, 1, 1, 1), 8), &kv);
  uint64_t n = 20000;
  for (uint64_t v = 1; v <= n; ++v) {
    ASSERT_TRUE(stream.Append(static_cast<Timestamp>(v), 1.0).ok());
  }
  // Less than one merge per element, amortized (§4.1).
  EXPECT_LT(stream.merge_count(), n);
}

}  // namespace
}  // namespace ss
