// Bounded out-of-order ingestion (StreamConfig::reorder_buffer): appends
// staged in a timestamp min-heap must produce a store identical to ingesting
// the same events in sorted order.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/query.h"
#include "src/core/stream.h"
#include "src/random/rng.h"
#include "src/storage/memory_backend.h"

namespace ss {
namespace {

StreamConfig MakeConfig(uint64_t reorder) {
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  config.operators = OperatorSet::AggregatesOnly();
  config.raw_threshold = 8;
  config.reorder_buffer = reorder;
  return config;
}

// Events shuffled fully within consecutive blocks of `block` positions, so
// no event is displaced by more than 2·block − 1.
std::vector<Event> ShuffledEvents(int n, size_t block, uint64_t seed) {
  std::vector<Event> events;
  for (int i = 1; i <= n; ++i) {
    events.push_back({static_cast<Timestamp>(i * 3), static_cast<double>(i % 7)});
  }
  Rng rng(seed);
  for (size_t start = 0; start < events.size(); start += block) {
    size_t end = std::min(start + block, events.size());
    for (size_t i = start; i + 1 < end; ++i) {
      size_t j = i + rng.NextBounded(end - i);
      std::swap(events[i], events[j]);
    }
  }
  return events;
}

TEST(ReorderBuffer, ShuffledStreamMatchesSortedIngest) {
  const int n = 5000;
  std::vector<Event> shuffled = ShuffledEvents(n, 32, 9);

  MemoryBackend kv_sorted;
  Stream sorted_stream(1, MakeConfig(0), &kv_sorted);
  std::vector<Event> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end(),
            [](const Event& a, const Event& b) { return a.ts < b.ts; });
  for (const Event& e : sorted) {
    ASSERT_TRUE(sorted_stream.Append(e.ts, e.value).ok());
  }

  MemoryBackend kv_reorder;
  Stream reorder_stream(2, MakeConfig(64), &kv_reorder);
  for (const Event& e : shuffled) {
    ASSERT_TRUE(reorder_stream.Append(e.ts, e.value).ok());
  }
  ASSERT_TRUE(reorder_stream.DrainReorderBuffer().ok());

  EXPECT_EQ(reorder_stream.element_count(), sorted_stream.element_count());
  EXPECT_EQ(reorder_stream.window_count(), sorted_stream.window_count());
  for (QueryOp op : {QueryOp::kCount, QueryOp::kSum}) {
    QuerySpec spec{.t1 = 0, .t2 = n * 3 + 1, .op = op};
    auto a = RunQuery(sorted_stream, spec);
    auto b = RunQuery(reorder_stream, spec);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ(a->estimate, b->estimate);
  }
}

TEST(ReorderBuffer, DuplicateAndInterleavedTimestampsMatchSortedIngest) {
  // Ties are legal (ts == watermark is not out-of-order); a shuffled stream
  // with heavy timestamp duplication must agree with its sorted twin on all
  // order-insensitive state.
  std::vector<Event> events;
  Rng rng(41);
  for (int i = 0; i < 3000; ++i) {
    // ~4 events per distinct timestamp, interleaved blockwise below.
    events.push_back({static_cast<Timestamp>(i / 4 + 1), static_cast<double>(rng.NextBounded(9))});
  }
  for (size_t start = 0; start < events.size(); start += 24) {
    size_t end = std::min(start + 24, events.size());
    for (size_t i = start; i + 1 < end; ++i) {
      size_t j = i + rng.NextBounded(end - i);
      std::swap(events[i], events[j]);
    }
  }

  MemoryBackend kv_sorted;
  Stream sorted_stream(1, MakeConfig(0), &kv_sorted);
  std::vector<Event> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });
  for (const Event& e : sorted) {
    ASSERT_TRUE(sorted_stream.Append(e.ts, e.value).ok());
  }

  MemoryBackend kv_reorder;
  Stream reorder_stream(2, MakeConfig(48), &kv_reorder);
  for (const Event& e : events) {
    ASSERT_TRUE(reorder_stream.Append(e.ts, e.value).ok());
  }
  ASSERT_TRUE(reorder_stream.DrainReorderBuffer().ok());

  EXPECT_EQ(reorder_stream.element_count(), sorted_stream.element_count());
  EXPECT_EQ(reorder_stream.window_count(), sorted_stream.window_count());
  EXPECT_EQ(reorder_stream.watermark(), sorted_stream.watermark());
  for (QueryOp op : {QueryOp::kCount, QueryOp::kSum}) {
    QuerySpec spec{.t1 = 0, .t2 = 3000, .op = op};
    auto a = RunQuery(sorted_stream, spec);
    auto b = RunQuery(reorder_stream, spec);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ(a->estimate, b->estimate);
  }
}

TEST(ReorderBuffer, BatchedAppendsMatchSingleAppends) {
  // AppendBatch defers merge work until the end of the batch; the resulting
  // window state must be byte-for-byte equivalent to per-event ingestion,
  // including when batches interleave with single appends.
  const int n = 4000;
  std::vector<Event> events;
  Rng rng(17);
  for (int i = 1; i <= n; ++i) {
    events.push_back({static_cast<Timestamp>(i * 2), static_cast<double>(rng.NextBounded(100))});
  }

  MemoryBackend kv_single;
  Stream single_stream(1, MakeConfig(0), &kv_single);
  for (const Event& e : events) {
    ASSERT_TRUE(single_stream.Append(e.ts, e.value).ok());
  }

  MemoryBackend kv_batched;
  Stream batched_stream(2, MakeConfig(0), &kv_batched);
  size_t pos = 0;
  bool use_batch = true;
  while (pos < events.size()) {
    if (use_batch) {
      size_t len = std::min<size_t>(1 + rng.NextBounded(96), events.size() - pos);
      ASSERT_TRUE(batched_stream.AppendBatch(std::span(events).subspan(pos, len)).ok());
      pos += len;
    } else {
      ASSERT_TRUE(batched_stream.Append(events[pos].ts, events[pos].value).ok());
      ++pos;
    }
    use_batch = !use_batch;
  }

  EXPECT_EQ(batched_stream.element_count(), single_stream.element_count());
  EXPECT_EQ(batched_stream.window_count(), single_stream.window_count());
  EXPECT_EQ(batched_stream.merge_count(), single_stream.merge_count());
  EXPECT_EQ(batched_stream.watermark(), single_stream.watermark());
  for (Timestamp t1 : {0, 1000, 5000}) {
    for (QueryOp op : {QueryOp::kCount, QueryOp::kSum}) {
      QuerySpec spec{.t1 = t1, .t2 = 2 * n + 1, .op = op};
      auto a = RunQuery(single_stream, spec);
      auto b = RunQuery(batched_stream, spec);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_DOUBLE_EQ(a->estimate, b->estimate) << "t1=" << t1;
      EXPECT_DOUBLE_EQ(a->ci_lo, b->ci_lo) << "t1=" << t1;
      EXPECT_DOUBLE_EQ(a->ci_hi, b->ci_hi) << "t1=" << t1;
    }
  }
}

TEST(ReorderBuffer, BatchedAppendsThroughReorderBufferMatchSorted) {
  // Batched out-of-order ingest: AppendBatch events staged through the
  // reorder heap drain to the same state as sorted per-event ingest.
  const int n = 2000;
  std::vector<Event> shuffled = ShuffledEvents(n, 16, 23);

  MemoryBackend kv_sorted;
  Stream sorted_stream(1, MakeConfig(0), &kv_sorted);
  std::vector<Event> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end(),
            [](const Event& a, const Event& b) { return a.ts < b.ts; });
  for (const Event& e : sorted) {
    ASSERT_TRUE(sorted_stream.Append(e.ts, e.value).ok());
  }

  MemoryBackend kv_batched;
  Stream batched_stream(2, MakeConfig(32), &kv_batched);
  for (size_t pos = 0; pos < shuffled.size(); pos += 50) {
    size_t len = std::min<size_t>(50, shuffled.size() - pos);
    ASSERT_TRUE(batched_stream.AppendBatch(std::span(shuffled).subspan(pos, len)).ok());
  }
  ASSERT_TRUE(batched_stream.DrainReorderBuffer().ok());

  EXPECT_EQ(batched_stream.element_count(), sorted_stream.element_count());
  EXPECT_EQ(batched_stream.window_count(), sorted_stream.window_count());
  QuerySpec spec{.t1 = 0, .t2 = n * 3 + 1, .op = QueryOp::kSum};
  auto a = RunQuery(sorted_stream, spec);
  auto b = RunQuery(batched_stream, spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->estimate, b->estimate);
}

TEST(ReorderBuffer, StagedEventsNotYetVisible) {
  MemoryBackend kv;
  Stream stream(1, MakeConfig(16), &kv);
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(stream.Append(i, 1.0).ok());
  }
  EXPECT_EQ(stream.element_count(), 0u);  // all staged
  EXPECT_EQ(stream.reorder_buffered(), 10u);
  ASSERT_TRUE(stream.DrainReorderBuffer().ok());
  EXPECT_EQ(stream.element_count(), 10u);
  EXPECT_EQ(stream.reorder_buffered(), 0u);
}

TEST(ReorderBuffer, DisplacementBeyondBufferStillRejected) {
  MemoryBackend kv;
  Stream stream(1, MakeConfig(4), &kv);
  // Fill and overflow: ts 100..104 release ts=100, advancing the watermark.
  for (Timestamp t : {100, 101, 102, 103, 104}) {
    ASSERT_TRUE(stream.Append(t, 1.0).ok());
  }
  EXPECT_EQ(stream.element_count(), 1u);  // ts=100 released
  // An event older than the released watermark overflows the buffer and is
  // rejected at append time: it is itself the minimum staged timestamp.
  EXPECT_FALSE(stream.Append(50, 1.0).ok());
  // The remaining staged events are intact and drainable.
  ASSERT_TRUE(stream.DrainReorderBuffer().ok());
  EXPECT_EQ(stream.element_count(), 5u);
}

TEST(ReorderBuffer, FlushDrains) {
  MemoryBackend kv;
  Stream stream(1, MakeConfig(16), &kv);
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(stream.Append(i, 2.0).ok());
  }
  ASSERT_TRUE(stream.Flush().ok());
  EXPECT_EQ(stream.reorder_buffered(), 0u);
  EXPECT_EQ(stream.element_count(), 5u);
}

TEST(ReorderBuffer, ConfigSurvivesSerde) {
  StreamConfig config = MakeConfig(128);
  config.window_cache_bytes = 4096;
  Writer w;
  config.Serialize(w);
  Reader r(w.data());
  auto restored = StreamConfig::Deserialize(r);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->reorder_buffer, 128u);
  EXPECT_EQ(restored->window_cache_bytes, 4096u);
}

}  // namespace
}  // namespace ss
