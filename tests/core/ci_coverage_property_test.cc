// Statistical property suite for the §5.2 claim that SummaryStore returns
// *reliable* confidence estimates: across arrival processes (Poisson,
// finite- and infinite-variance Pareto, regular) and operators (count, sum,
// frequency), the nominal 95% confidence interval must cover the true
// answer for the overwhelming majority of random sub-range queries.
#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "src/core/query.h"
#include "src/core/stream.h"
#include "src/storage/memory_backend.h"
#include "src/workload/generators.h"

namespace ss {
namespace {

using bench::Oracle;

struct CoverageCase {
  ArrivalKind arrival;
  QueryOp op;
  int min_coverage_pct;  // lower bound on empirical coverage of the 95% CI
};

void PrintTo(const CoverageCase& c, std::ostream* os) {
  *os << "arrival" << static_cast<int>(c.arrival) << "_" << QueryOpName(c.op);
}

class CiCoverageProperty : public ::testing::TestWithParam<CoverageCase> {};

TEST_P(CiCoverageProperty, NominalCoverageHolds) {
  const CoverageCase& param = GetParam();
  MemoryBackend kv;
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  config.operators = OperatorSet::Microbench();
  config.operators.cms_width = 2048;  // ample width: isolate sub-window error
  config.arrival_model =
      param.arrival == ArrivalKind::kPoisson ? ArrivalModel::kPoisson : ArrivalModel::kGeneric;
  config.raw_threshold = 16;
  Stream stream(1, config, &kv);

  SyntheticStreamSpec spec;
  spec.arrival = param.arrival;
  spec.mean_interarrival = 4.0;
  spec.value_universe = 50;
  spec.seed = 20240000 + static_cast<uint64_t>(param.arrival) * 13 +
              static_cast<uint64_t>(param.op);
  SyntheticStream gen(spec);
  Oracle oracle;
  for (int i = 0; i < 60000; ++i) {
    Event e = gen.Next();
    oracle.Add(e);
    ASSERT_TRUE(stream.Append(e.ts, e.value).ok());
  }

  Rng rng(99 + static_cast<uint64_t>(param.op));
  int covered = 0;
  int trials = 0;
  Timestamp span = oracle.last_ts() - oracle.first_ts();
  for (int i = 0; i < 250; ++i) {
    Timestamp t1 = oracle.first_ts() +
                   static_cast<Timestamp>(rng.NextBounded(static_cast<uint64_t>(span * 3 / 4)));
    Timestamp t2 = t1 + 20 + static_cast<Timestamp>(
                                 rng.NextBounded(static_cast<uint64_t>(span / 4)));
    QuerySpec query{.t1 = t1, .t2 = t2, .op = param.op};
    double truth = 0;
    switch (param.op) {
      case QueryOp::kCount:
        truth = oracle.Count(t1, t2);
        break;
      case QueryOp::kSum:
        truth = oracle.Sum(t1, t2);
        break;
      case QueryOp::kFrequency:
        query.value = static_cast<double>(rng.NextBounded(50));
        truth = oracle.Frequency(query.value, t1, t2);
        break;
      default:
        FAIL() << "unsupported op in coverage test";
    }
    auto result = RunQuery(stream, query);
    ASSERT_TRUE(result.ok());
    ++trials;
    if (truth >= result->ci_lo - 1e-9 && truth <= result->ci_hi + 1e-9) {
      ++covered;
    }
  }
  EXPECT_GE(covered * 100, trials * param.min_coverage_pct)
      << "coverage " << covered << "/" << trials;
}

INSTANTIATE_TEST_SUITE_P(
    ArrivalsAndOps, CiCoverageProperty,
    ::testing::Values(
        // Poisson: the Binomial/normal machinery is exact-regime here.
        CoverageCase{ArrivalKind::kPoisson, QueryOp::kCount, 88},
        CoverageCase{ArrivalKind::kPoisson, QueryOp::kSum, 88},
        CoverageCase{ArrivalKind::kPoisson, QueryOp::kFrequency, 85},
        // Regular arrivals: interarrival variance ~0, intervals collapse to
        // near-points that still cover.
        CoverageCase{ArrivalKind::kRegular, QueryOp::kCount, 88},
        CoverageCase{ArrivalKind::kRegular, QueryOp::kSum, 88},
        // Finite-variance Pareto: the renewal-theoretic normal holds.
        CoverageCase{ArrivalKind::kParetoFiniteVariance, QueryOp::kCount, 80},
        CoverageCase{ArrivalKind::kParetoFiniteVariance, QueryOp::kSum, 80},
        // Infinite variance: the paper's pathological case; the CLT-based
        // model is stressed, coverage degrades but must stay useful.
        CoverageCase{ArrivalKind::kParetoInfiniteVariance, QueryOp::kCount, 60}));

TEST(CiWidthShape, GrowsWithAgeShrinksWithLength) {
  // §7.2.2: "CI width is expected to increase with age and generally
  // decrease with (relative) length."
  MemoryBackend kv;
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  config.operators = OperatorSet::AggregatesOnly();
  config.arrival_model = ArrivalModel::kPoisson;
  config.raw_threshold = 8;
  Stream stream(1, config, &kv);
  SyntheticStreamSpec spec;
  spec.mean_interarrival = 2.0;
  spec.seed = 5;
  SyntheticStream gen(spec);
  Timestamp now = 0;
  for (int i = 0; i < 100000; ++i) {
    Event e = gen.Next();
    now = e.ts;
    ASSERT_TRUE(stream.Append(e.ts, e.value).ok());
  }

  auto rel_ci = [&](Timestamp age, Timestamp len) {
    QuerySpec query{.t1 = now - age - len, .t2 = now - age, .op = QueryOp::kCount};
    auto result = RunQuery(stream, query);
    EXPECT_TRUE(result.ok());
    return result->CiWidth() / std::max(1.0, result->estimate);
  };
  Timestamp len = 500;
  double young = rel_ci(2000, len);
  double old = rel_ci(150000, len);
  EXPECT_GE(old, young);

  Timestamp age = 100000;
  double narrow = rel_ci(age, 300);
  double wide = rel_ci(age, 30000);
  EXPECT_LE(wide, narrow);
}

}  // namespace
}  // namespace ss
