// Time-based windowing (WindowingMode::kTimeBased): decay target lengths
// measured in stream-time units rather than element counts (§3.2's
// "windows span progressively-longer time lengths").
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/query.h"
#include "src/core/stream.h"
#include "src/random/arrival.h"
#include "src/storage/memory_backend.h"

namespace ss {
namespace {

StreamConfig TimeConfig(std::shared_ptr<const DecayFunction> decay) {
  StreamConfig config;
  config.decay = std::move(decay);
  config.operators = OperatorSet::AggregatesOnly();
  config.windowing = WindowingMode::kTimeBased;
  config.raw_threshold = 8;
  return config;
}

TEST(TimeWindowing, RegularArrivalsMatchCountBased) {
  // With one event per time unit the two modes coincide: replay the
  // Figure 3 trace in time space.
  MemoryBackend kv;
  StreamConfig config = TimeConfig(std::make_shared<ExponentialDecay>(2.0, 1, 1));
  config.raw_threshold = 4;
  Stream stream(1, config, &kv);
  for (Timestamp t = 1; t <= 15; ++t) {
    ASSERT_TRUE(stream.Append(t, static_cast<double>(t)).ok());
  }
  // Figure 3 after 15 inserts: W15, W14-13, W12-9, W8-1.
  auto views = stream.WindowsOverlapping(0, 100);
  ASSERT_TRUE(views.ok());
  ASSERT_EQ(views->size(), 4u);
  EXPECT_EQ((*views)[0].window->cs(), 1u);
  EXPECT_EQ((*views)[0].window->ce(), 8u);
  EXPECT_EQ((*views)[1].window->ce(), 12u);
  EXPECT_EQ((*views)[2].window->ce(), 14u);
  EXPECT_EQ((*views)[3].window->ce(), 15u);
}

TEST(TimeWindowing, WindowTimeSpansTrackDecayNotCounts) {
  // Bursty arrivals: 50 events per unit for t in [0, 200), then 1 event per
  // 100 units until t = 20000. Under time-based power-law windowing the old
  // burst must end up in windows whose *time spans* follow the decay —
  // i.e., the burst collapses into few windows even though it holds most of
  // the elements.
  MemoryBackend kv;
  Stream stream(1, TimeConfig(std::make_shared<PowerLawDecay>(1, 1, 1, 1)), &kv);
  for (Timestamp t = 0; t < 200; ++t) {
    for (int j = 0; j < 50; ++j) {
      ASSERT_TRUE(stream.Append(t, 1.0).ok());
    }
  }
  for (Timestamp t = 200; t <= 20000; t += 100) {
    ASSERT_TRUE(stream.Append(t, 1.0).ok());
  }
  // The burst region [0, 200) is ~19800 time units old; time-based buckets
  // there span ~sqrt(2*19800) ≈ 199 units, so the whole burst fits a
  // handful of windows despite its 10000 elements.
  auto views = stream.WindowsOverlapping(0, 199);
  ASSERT_TRUE(views.ok());
  EXPECT_LE(views->size(), 6u);
  // A count over the burst region: the window straddling the burst/sparse
  // boundary spreads its mass time-proportionally, so the point estimate is
  // biased low. This is the documented limit of the four-scalar stream
  // model (§5.2 assumes i.i.d. interarrivals; a regime change violates it):
  // the bulk of the mass is still recovered and the CI is wide, not tight.
  QuerySpec spec{.t1 = 0, .t2 = 199, .op = QueryOp::kCount};
  auto result = RunQuery(stream, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->estimate, 6000.0);
  EXPECT_LT(result->estimate, 11000.0);
  EXPECT_FALSE(result->exact);
  EXPECT_GT(result->CiWidth(), 100.0);  // the model reports real uncertainty
}

TEST(TimeWindowing, WindowCountLogarithmicInTimeSpan) {
  MemoryBackend kv;
  Stream stream(1, TimeConfig(std::make_shared<ExponentialDecay>(2.0, 1, 1)), &kv);
  // Sparse arrivals over a long time span: window count tracks log(T), not N.
  PoissonArrivals arrivals(0.01, 3);  // mean gap 100 units
  Timestamp last = 0;
  for (int i = 0; i < 2000; ++i) {
    last = arrivals.Next();
    ASSERT_TRUE(stream.Append(last, 1.0).ok());
  }
  double log_t = std::log2(static_cast<double>(last));
  EXPECT_LE(stream.window_count(), static_cast<size_t>(3.0 * log_t));
}

TEST(TimeWindowing, NegativeTimestampsRejected) {
  MemoryBackend kv;
  Stream stream(1, TimeConfig(std::make_shared<PowerLawDecay>(1, 1, 1, 1)), &kv);
  EXPECT_EQ(stream.Append(-5, 1.0).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(stream.Append(0, 1.0).ok());
}

TEST(TimeWindowing, ConfigRoundTripsAndReloads) {
  MemoryBackend kv;
  {
    Stream stream(1, TimeConfig(std::make_shared<PowerLawDecay>(1, 1, 2, 1)), &kv);
    for (Timestamp t = 0; t < 3000; ++t) {
      ASSERT_TRUE(stream.Append(t, 1.0).ok());
    }
    ASSERT_TRUE(stream.Flush().ok());
  }
  auto reloaded = Stream::Load(1, &kv);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ((*reloaded)->config().windowing, WindowingMode::kTimeBased);
  size_t windows_before = (*reloaded)->window_count();
  // Ingest continues with the same time-based merge behavior.
  for (Timestamp t = 3000; t < 6000; ++t) {
    ASSERT_TRUE((*reloaded)->Append(t, 1.0).ok());
  }
  double expected = std::sqrt(2.0 * 6000.0);
  EXPECT_NEAR(static_cast<double>((*reloaded)->window_count()), expected, expected);
  EXPECT_GT((*reloaded)->window_count(), windows_before / 2);
  QuerySpec spec{.t1 = 0, .t2 = 5999, .op = QueryOp::kCount};
  auto result = RunQuery(**reloaded, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->estimate, 6000.0);
}

}  // namespace
}  // namespace ss
