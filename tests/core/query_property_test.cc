// Query-engine invariants, checked over randomized streams and ranges:
//   * the ML estimate lies inside its own confidence interval
//   * counts are monotone in range inclusion
//   * additivity: count[a,c] == count[a,b] + count[b+1,c] (approximately,
//     exactly when window-aligned)
//   * window-aligned queries are exact
//   * query results are deterministic (same query twice == same answer)
#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "src/core/query.h"
#include "src/core/stream.h"
#include "src/storage/memory_backend.h"
#include "src/workload/generators.h"

namespace ss {
namespace {

using bench::Oracle;

class QueryProperty : public ::testing::TestWithParam<int> {
 protected:
  void Build(uint64_t seed) {
    config_.decay = std::make_shared<PowerLawDecay>(1, 1, 2, 1);
    config_.operators = OperatorSet::Microbench();
    config_.operators.cms_width = 256;
    config_.raw_threshold = 16;
    stream_ = std::make_unique<Stream>(1, config_, &kv_);
    SyntheticStreamSpec spec;
    spec.arrival = ArrivalKind::kPoisson;
    spec.mean_interarrival = 3.0;
    spec.value_universe = 40;
    spec.seed = seed;
    SyntheticStream gen(spec);
    for (int i = 0; i < 30000; ++i) {
      Event e = gen.Next();
      oracle_.Add(e);
      ASSERT_TRUE(stream_->Append(e.ts, e.value).ok());
    }
  }

  double Estimate(Timestamp t1, Timestamp t2, QueryOp op) {
    QuerySpec spec{.t1 = t1, .t2 = t2, .op = op};
    auto result = RunQuery(*stream_, spec);
    EXPECT_TRUE(result.ok());
    return result->estimate;
  }

  MemoryBackend kv_;
  StreamConfig config_;
  std::unique_ptr<Stream> stream_;
  Oracle oracle_;
};

TEST_P(QueryProperty, EstimateInsideItsOwnInterval) {
  Build(100 + static_cast<uint64_t>(GetParam()));
  Rng rng(7 + static_cast<uint64_t>(GetParam()));
  Timestamp span = oracle_.last_ts() - oracle_.first_ts();
  for (int i = 0; i < 100; ++i) {
    Timestamp t1 = oracle_.first_ts() +
                   static_cast<Timestamp>(rng.NextBounded(static_cast<uint64_t>(span / 2)));
    Timestamp t2 = t1 + 10 + static_cast<Timestamp>(
                                 rng.NextBounded(static_cast<uint64_t>(span / 2)));
    for (QueryOp op : {QueryOp::kCount, QueryOp::kSum}) {
      QuerySpec spec{.t1 = t1, .t2 = t2, .op = op};
      auto result = RunQuery(*stream_, spec);
      ASSERT_TRUE(result.ok());
      EXPECT_LE(result->ci_lo, result->estimate + 1e-9);
      EXPECT_GE(result->ci_hi, result->estimate - 1e-9);
    }
  }
}

TEST_P(QueryProperty, CountMonotoneInRangeInclusion) {
  Build(200 + static_cast<uint64_t>(GetParam()));
  Rng rng(8 + static_cast<uint64_t>(GetParam()));
  Timestamp span = oracle_.last_ts() - oracle_.first_ts();
  for (int i = 0; i < 60; ++i) {
    Timestamp t1 = oracle_.first_ts() +
                   static_cast<Timestamp>(rng.NextBounded(static_cast<uint64_t>(span / 2)));
    Timestamp t2 = t1 + 50 + static_cast<Timestamp>(rng.NextBounded(5000));
    Timestamp t2_wider = t2 + 1000 + static_cast<Timestamp>(rng.NextBounded(5000));
    double inner = Estimate(t1, t2, QueryOp::kCount);
    double outer = Estimate(t1, t2_wider, QueryOp::kCount);
    EXPECT_GE(outer, inner - inner * 0.02 - 2.0);  // statistical slack
  }
}

TEST_P(QueryProperty, CountApproximatelyAdditive) {
  Build(300 + static_cast<uint64_t>(GetParam()));
  Rng rng(9 + static_cast<uint64_t>(GetParam()));
  Timestamp span = oracle_.last_ts() - oracle_.first_ts();
  for (int i = 0; i < 60; ++i) {
    Timestamp a = oracle_.first_ts() +
                  static_cast<Timestamp>(rng.NextBounded(static_cast<uint64_t>(span / 2)));
    Timestamp c = a + 2000 + static_cast<Timestamp>(rng.NextBounded(20000));
    Timestamp b = a + static_cast<Timestamp>(rng.NextBounded(static_cast<uint64_t>(c - a)));
    double whole = Estimate(a, c, QueryOp::kCount);
    double left = Estimate(a, b, QueryOp::kCount);
    double right = Estimate(b + 1, c, QueryOp::kCount);
    EXPECT_NEAR(left + right, whole, std::max(8.0, whole * 0.05));
  }
}

TEST_P(QueryProperty, Deterministic) {
  Build(400 + static_cast<uint64_t>(GetParam()));
  Timestamp mid = (oracle_.first_ts() + oracle_.last_ts()) / 2;
  QuerySpec spec{.t1 = oracle_.first_ts() + 7, .t2 = mid, .op = QueryOp::kSum};
  auto a = RunQuery(*stream_, spec);
  auto b = RunQuery(*stream_, spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->estimate, b->estimate);
  EXPECT_EQ(a->ci_lo, b->ci_lo);
  EXPECT_EQ(a->ci_hi, b->ci_hi);
}

TEST_P(QueryProperty, FullStreamQueriesExact) {
  Build(500 + static_cast<uint64_t>(GetParam()));
  double count = Estimate(oracle_.first_ts(), oracle_.last_ts(), QueryOp::kCount);
  EXPECT_DOUBLE_EQ(count, oracle_.Count(oracle_.first_ts(), oracle_.last_ts()));
  double sum = Estimate(oracle_.first_ts(), oracle_.last_ts(), QueryOp::kSum);
  EXPECT_NEAR(sum, oracle_.Sum(oracle_.first_ts(), oracle_.last_ts()), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryProperty, ::testing::Range(0, 4));

}  // namespace
}  // namespace ss
