// Adversarial wire-protocol tests: every decoder and the live server must
// fail closed on hostile bytes — kCorruption (and a clean disconnect at the
// server), never a crash, hang, or oversized allocation. Runs under the ASan
// ci.sh leg; keep every input here allocation-bounded.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <limits>
#include <thread>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/summary_store.h"
#include "src/net/client.h"
#include "src/net/protocol.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/random/rng.h"
#include "src/storage/file_util.h"

namespace ss::net {
namespace {

std::string FrameWithLength(uint32_t len, std::string_view payload) {
  std::string out;
  out.append(reinterpret_cast<const char*>(&len), sizeof(len));
  out.append(payload);
  return out;
}

std::string ValidFrame(std::string_view payload) {
  std::string out;
  EXPECT_TRUE(AppendFrame(payload, &out).ok());
  return out;
}

std::string AppendRequestPayload(uint64_t request_id, StreamId sid, Timestamp ts, double value) {
  Writer w;
  EncodeRequestHeader(RequestHeader{request_id, Opcode::kAppend}, w);
  w.PutVarint(sid);
  w.PutSignedVarint(ts);
  w.PutDouble(value);
  return w.Release();
}

// ------------------------------------------------------------ pure decoders

TEST(FrameScanTest, RejectsHostileLengths) {
  // Zero length: never valid, cannot be resynchronized.
  auto zero = ScanFrame(FrameWithLength(0, ""));
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kCorruption);

  // Length beyond the cap: reject before buffering gigabytes.
  auto huge = ScanFrame(FrameWithLength(0xffffffffu, "x"));
  ASSERT_FALSE(huge.ok());
  EXPECT_EQ(huge.status().code(), StatusCode::kCorruption);

  auto over = ScanFrame(FrameWithLength(kMaxFrameBytes + 1, "x"));
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kCorruption);
}

TEST(FrameScanTest, IncompleteFramesAskForMore) {
  std::string frame = ValidFrame("hello");
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    auto scan = ScanFrame(std::string_view(frame).substr(0, cut));
    ASSERT_TRUE(scan.ok()) << "cut=" << cut;
    EXPECT_FALSE(scan->complete) << "cut=" << cut;
  }
  auto whole = ScanFrame(frame);
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(whole->complete);
  EXPECT_EQ(whole->payload, "hello");
  EXPECT_EQ(whole->frame_end, frame.size());
}

TEST(FrameScanTest, AppendFrameRejectsOutOfRangePayloads) {
  std::string out;
  EXPECT_FALSE(AppendFrame("", &out).ok());
  std::string big(kMaxFrameBytes + 1, 'x');
  EXPECT_FALSE(AppendFrame(big, &out).ok());
}

TEST(ProtocolDecodeTest, RequestHeaderRejectsUnknownOpcode) {
  Writer w;
  w.PutVarint(1);
  w.PutU8(static_cast<uint8_t>(Opcode::kMaxOpcode) + 1);
  Reader r(w.data());
  auto header = DecodeRequestHeader(r);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kCorruption);
}

// deadline/session ride as flag-gated header extensions (DESIGN.md §15): new
// frames round-trip them, legacy frames decode with both absent, and hostile
// or truncated fields fail closed.
TEST(ProtocolDecodeTest, RequestHeaderExtensionFieldsCompatibleAndHostile) {
  RequestHeader full;
  full.request_id = 7;
  full.op = Opcode::kAppend;
  full.has_deadline = true;
  full.deadline_ms = 1500;
  full.has_session = true;
  full.session_id = 0xABCD;
  full.seq = 42;
  Writer w;
  EncodeRequestHeader(full, w);
  const std::string bytes = w.Release();
  {  // round-trips
    Reader r(bytes);
    auto decoded = DecodeRequestHeader(r);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->request_id, 7u);
    EXPECT_EQ(decoded->op, Opcode::kAppend);
    EXPECT_TRUE(decoded->has_deadline);
    EXPECT_EQ(decoded->deadline_ms, 1500u);
    EXPECT_TRUE(decoded->has_session);
    EXPECT_EQ(decoded->session_id, 0xABCDu);
    EXPECT_EQ(decoded->seq, 42u);
  }
  {  // legacy header (no flag bits) decodes with both extensions absent
    Writer lw;
    lw.PutVarint(7);
    lw.PutU8(static_cast<uint8_t>(Opcode::kAppend));
    Reader r(lw.data());
    auto decoded = DecodeRequestHeader(r);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_FALSE(decoded->has_deadline);
    EXPECT_FALSE(decoded->has_session);
    EXPECT_EQ(decoded->deadline_ms, 0u);
    EXPECT_EQ(decoded->session_id, 0u);
  }
  // Truncation at every byte: the flag bits promise fields that never
  // arrive, so every proper prefix must fail closed, never default.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Reader r(std::string_view(bytes).substr(0, cut));
    auto decoded = DecodeRequestHeader(r);
    ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption) << "cut=" << cut;
  }
  {  // zero session id / zero seq: reserved as "no session", must be rejected
    for (auto [sid, seq] : {std::pair<uint64_t, uint64_t>{0, 5}, {5, 0}, {0, 0}}) {
      Writer bw;
      bw.PutVarint(1);
      bw.PutU8(static_cast<uint8_t>(Opcode::kAppend) | kHeaderFlagSession);
      bw.PutVarint(sid);
      bw.PutVarint(seq);
      Reader r(bw.data());
      EXPECT_EQ(DecodeRequestHeader(r).status().code(), StatusCode::kCorruption)
          << "sid=" << sid << " seq=" << seq;
    }
  }
  {  // a hostile huge deadline clamps (steady-clock math must not overflow)
    Writer bw;
    bw.PutVarint(1);
    bw.PutU8(static_cast<uint8_t>(Opcode::kPing) | kHeaderFlagDeadline);
    bw.PutVarint(UINT64_MAX);
    Reader r(bw.data());
    auto decoded = DecodeRequestHeader(r);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_TRUE(decoded->has_deadline);
    EXPECT_EQ(decoded->deadline_ms, kMaxDeadlineMs);
  }
  {  // overlong varint in the deadline slot
    Writer bw;
    bw.PutVarint(1);
    bw.PutU8(static_cast<uint8_t>(Opcode::kPing) | kHeaderFlagDeadline);
    bw.PutRaw(std::string(11, '\xff').data(), 11);
    Reader r(bw.data());
    EXPECT_EQ(DecodeRequestHeader(r).status().code(), StatusCode::kCorruption);
  }
  {  // flag bits cannot launder a garbage opcode: masked op is checked first
    for (uint8_t flags : {kHeaderFlagDeadline, kHeaderFlagSession,
                          static_cast<uint8_t>(kHeaderFlagDeadline | kHeaderFlagSession)}) {
      Writer bw;
      bw.PutVarint(1);
      bw.PutU8(static_cast<uint8_t>((static_cast<uint8_t>(Opcode::kMaxOpcode) + 1) | flags));
      bw.PutVarint(100);  // plausible trailing fields
      bw.PutVarint(100);
      bw.PutVarint(100);
      Reader r(bw.data());
      EXPECT_EQ(DecodeRequestHeader(r).status().code(), StatusCode::kCorruption)
          << "flags=" << static_cast<int>(flags);
    }
  }
}

TEST(ProtocolDecodeTest, QuerySpecRejectsHostileValues) {
  QuerySpec spec;
  spec.t1 = -100;
  spec.t2 = 100;
  spec.op = QueryOp::kQuantile;
  spec.quantile_q = 0.9;

  {  // baseline round-trips
    Writer w;
    EncodeQuerySpec(spec, w);
    Reader r(w.data());
    auto decoded = DecodeQuerySpec(r);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->t1, spec.t1);
    EXPECT_EQ(decoded->op, spec.op);
    EXPECT_DOUBLE_EQ(decoded->quantile_q, 0.9);
  }
  {  // unknown query op
    QuerySpec bad = spec;
    Writer w;
    EncodeQuerySpec(bad, w);
    std::string bytes = w.Release();
    // The op byte sits after the two svarint timestamps; patch it directly.
    Reader probe(bytes);
    ASSERT_TRUE(probe.ReadSignedVarint().ok());
    ASSERT_TRUE(probe.ReadSignedVarint().ok());
    bytes[probe.position()] = 0x7f;
    Reader r(bytes);
    EXPECT_EQ(DecodeQuerySpec(r).status().code(), StatusCode::kCorruption);
  }
  {  // NaN quantile
    QuerySpec bad = spec;
    bad.quantile_q = std::numeric_limits<double>::quiet_NaN();
    Writer w;
    EncodeQuerySpec(bad, w);
    Reader r(w.data());
    EXPECT_EQ(DecodeQuerySpec(r).status().code(), StatusCode::kCorruption);
  }
  {  // confidence outside (0, 1)
    for (double confidence : {0.0, 1.0, -3.0, 17.0,
                              std::numeric_limits<double>::infinity()}) {
      QuerySpec bad = spec;
      bad.confidence = confidence;
      Writer w;
      EncodeQuerySpec(bad, w);
      Reader r(w.data());
      EXPECT_EQ(DecodeQuerySpec(r).status().code(), StatusCode::kCorruption)
          << "confidence=" << confidence;
    }
  }
}

TEST(ProtocolDecodeTest, EventBatchCountCrossCheckedAgainstPayload) {
  {  // count claims far more events than the bytes can hold: no allocation
    Writer w;
    w.PutVarint(1u << 30);
    w.PutSignedVarint(1);
    w.PutDouble(1.0);
    Reader r(w.data());
    auto batch = DecodeEventBatch(r);
    ASSERT_FALSE(batch.ok());
    EXPECT_EQ(batch.status().code(), StatusCode::kCorruption);
  }
  {  // UINT64_MAX count: the division-based check must not overflow
    Writer w;
    w.PutVarint(UINT64_MAX);
    Reader r(w.data());
    EXPECT_EQ(DecodeEventBatch(r).status().code(), StatusCode::kCorruption);
  }
  {  // truncated mid-event
    Writer w;
    EncodeEventBatch(std::vector<Event>{{1, 1.0}, {2, 2.0}}, w);
    std::string bytes = w.Release();
    bytes.resize(bytes.size() - 4);
    Reader r(bytes);
    EXPECT_EQ(DecodeEventBatch(r).status().code(), StatusCode::kCorruption);
  }
  {  // honest batch round-trips
    std::vector<Event> events = {{-5, 1.5}, {7, -2.5}, {9, 0.0}};
    Writer w;
    EncodeEventBatch(events, w);
    Reader r(w.data());
    auto decoded = DecodeEventBatch(r);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->size(), 3u);
    EXPECT_EQ((*decoded)[0].ts, -5);
    EXPECT_DOUBLE_EQ((*decoded)[1].value, -2.5);
  }
}

TEST(ProtocolDecodeTest, QueryResultSpanCountCrossChecked) {
  QueryResult result;
  result.estimate = 42.0;
  result.skipped_spans = {{1, 2}, {3, 4}};
  Writer w;
  EncodeQueryResult(result, "trace", w);
  {  // round-trip
    Reader r(w.data());
    auto decoded = DecodeQueryResult(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_DOUBLE_EQ(decoded->result.estimate, 42.0);
    ASSERT_EQ(decoded->result.skipped_spans.size(), 2u);
    EXPECT_EQ(decoded->trace_text, "trace");
  }
  {  // hostile span count
    Writer bad;
    bad.PutDouble(0.0);
    bad.PutU8(0);
    bad.PutDouble(0.0);
    bad.PutDouble(0.0);
    bad.PutDouble(0.0);
    bad.PutU8(0);
    bad.PutU8(0);
    bad.PutVarint(0);
    bad.PutVarint(0);
    bad.PutVarint(UINT64_MAX);  // span count
    Reader r(bad.data());
    EXPECT_EQ(DecodeQueryResult(r).status().code(), StatusCode::kCorruption);
  }
}

// top_k rides as a trailing QuerySpec field: new frames round-trip it, legacy
// frames without it decode to the default, hostile values are rejected.
TEST(ProtocolDecodeTest, QuerySpecTopKTrailingFieldCompatible) {
  QuerySpec spec;
  spec.t1 = 1;
  spec.t2 = 100;
  spec.op = QueryOp::kTopK;
  spec.top_k = 32;
  Writer w;
  EncodeQuerySpec(spec, w);
  {  // round-trips
    Reader r(w.data());
    auto decoded = DecodeQuerySpec(r);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->op, QueryOp::kTopK);
    EXPECT_EQ(decoded->top_k, 32u);
  }
  {  // legacy frame (no trailing top_k varint): default applies
    std::string bytes = w.Release();
    bytes.resize(bytes.size() - 1);  // top_k=32 encodes as one varint byte
    Reader r(bytes);
    auto decoded = DecodeQuerySpec(r);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->top_k, 10u);
  }
  {  // hostile values: zero and absurdly large k
    for (uint32_t hostile : {0u, (1u << 20) + 1, UINT32_MAX}) {
      QuerySpec bad = spec;
      bad.top_k = hostile;
      Writer bw;
      EncodeQuerySpec(bad, bw);
      Reader r(bw.data());
      EXPECT_EQ(DecodeQuerySpec(r).status().code(), StatusCode::kCorruption)
          << "top_k=" << hostile;
    }
  }
}

TEST(ProtocolDecodeTest, QueryResultTopKEntriesTrailingFieldCompatible) {
  QueryResult result;
  result.estimate = 5.0;
  result.topk = {{1.0, 5.0, 4.0, 6.0}, {2.0, 3.0, 2.0, 4.0}};
  Writer w;
  EncodeQueryResult(result, "", w);
  {  // round-trips
    Reader r(w.data());
    auto decoded = DecodeQueryResult(r);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ASSERT_EQ(decoded->result.topk.size(), 2u);
    EXPECT_DOUBLE_EQ(decoded->result.topk[0].value, 1.0);
    EXPECT_DOUBLE_EQ(decoded->result.topk[0].estimate, 5.0);
    EXPECT_DOUBLE_EQ(decoded->result.topk[1].ci_lo, 2.0);
    EXPECT_DOUBLE_EQ(decoded->result.topk[1].ci_hi, 4.0);
  }
  QueryResult plain;
  plain.estimate = 1.0;
  Writer pw;
  EncodeQueryResult(plain, "", pw);
  std::string legacy = pw.Release();
  legacy.resize(legacy.size() - 1);  // strip the empty-topk count varint
  {  // legacy frame without the trailing section decodes to empty topk
    Reader r(legacy);
    auto decoded = DecodeQueryResult(r);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_TRUE(decoded->result.topk.empty());
  }
  {  // hostile entry count exceeding the payload: no allocation, clean error
    Writer bw;
    bw.PutRaw(legacy.data(), legacy.size());
    bw.PutVarint(1u << 30);
    Reader r(bw.data());
    EXPECT_EQ(DecodeQueryResult(r).status().code(), StatusCode::kCorruption);
  }
}

TEST(ProtocolDecodeTest, StatusAndScrubAndInfoRoundTrip) {
  {
    Writer w;
    EncodeStatus(Status::FailedPrecondition("queue full"), w);
    Reader r(w.data());
    Status decoded = Status::Ok();
    ASSERT_TRUE(DecodeStatus(r, &decoded).ok());
    EXPECT_EQ(decoded.code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(decoded.message(), "queue full");
  }
  {  // unknown status code fails closed
    Writer w;
    w.PutU8(200);
    w.PutString("");
    Reader r(w.data());
    Status decoded = Status::Ok();
    EXPECT_EQ(DecodeStatus(r, &decoded).code(), StatusCode::kCorruption);
  }
  {
    ScrubReport report;
    report.windows_checked = 7;
    report.quarantined = 2;
    Writer w;
    EncodeScrubReport(report, w);
    Reader r(w.data());
    auto decoded = DecodeScrubReport(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->windows_checked, 7u);
    EXPECT_EQ(decoded->quarantined, 2u);
  }
  {
    StreamInfo info;
    info.id = 3;
    info.element_count = 100;
    info.decay = "PowerLaw(1,1,1,1)";
    Writer w;
    EncodeStreamInfo(info, w);
    Reader r(w.data());
    auto decoded = DecodeStreamInfo(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->id, 3u);
    EXPECT_EQ(decoded->decay, "PowerLaw(1,1,1,1)");
  }
}

// --------------------------------------------------------------- live server

class FrameFuzzServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // pid-qualified: ctest runs each test in its own process, so a
    // process-local counter alone collides under parallel ctest.
    static std::atomic<int> counter{0};
    dir_ = ::testing::TempDir() + "/ss_fuzz_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1));
    (void)RemoveDirRecursive(dir_);  // stale store from a previous run
    StoreOptions options;
    options.dir = dir_;
    auto store = SummaryStore::Open(options);
    ASSERT_TRUE(store.ok()) << store.status();
    store_ = std::move(*store);
    auto server = Server::Start(store_.get(), ServerOptions{});
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(*server);

    StreamConfig config;
    config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
    auto client = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE((*client)->CreateStream(1, std::move(config)).ok());
  }

  // Writes `bytes`, then waits for the server to close the connection. The
  // deadline bounds the "never hang" guarantee; any response bytes the
  // server sends first are drained and discarded.
  void SendExpectClose(const std::string& bytes, const char* what) {
    auto fd = ConnectTcp("127.0.0.1", server_->port());
    ASSERT_TRUE(fd.ok()) << fd.status();
    ASSERT_TRUE(WriteFully(fd->get(), bytes).ok()) << what;
    char buf[4096];
    for (int spins = 0; spins < 100; ++spins) {
      auto r = ReadSome(fd->get(), buf, sizeof(buf));
      ASSERT_TRUE(r.ok()) << what << ": " << r.status();
      if (*r == 0) {
        return;  // clean close
      }
    }
    FAIL() << what << ": server kept the connection open past the deadline";
  }

  // Writes `bytes` and disconnects immediately (mid-frame hangup).
  void SendAndHangUp(const std::string& bytes) {
    auto fd = ConnectTcp("127.0.0.1", server_->port());
    ASSERT_TRUE(fd.ok()) << fd.status();
    ASSERT_TRUE(WriteFully(fd->get(), bytes).ok());
  }

  // The liveness probe: after every attack the server must still answer.
  void AssertServerHealthy() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok()) << client.status();
    ASSERT_TRUE((*client)->Ping().ok());
  }

  std::string dir_;
  std::unique_ptr<SummaryStore> store_;
  std::unique_ptr<Server> server_;
};

TEST_F(FrameFuzzServerTest, HostileLengthPrefixesCloseCleanly) {
  SendExpectClose(FrameWithLength(0, ""), "zero length");
  SendExpectClose(FrameWithLength(0xffffffffu, "xxxx"), "max-u32 length");
  SendExpectClose(FrameWithLength(kMaxFrameBytes + 1, "xxxx"), "just over cap");
  AssertServerHealthy();
}

TEST_F(FrameFuzzServerTest, GarbageOpcodesCloseCleanly) {
  for (uint8_t op : {static_cast<uint8_t>(Opcode::kMaxOpcode) + 1, 0x7f, 0xff}) {
    Writer w;
    w.PutVarint(1);
    w.PutU8(op);
    SendExpectClose(ValidFrame(w.data()), "garbage opcode");
  }
  // An unterminated 11-byte varint as the request id.
  SendExpectClose(ValidFrame(std::string(11, '\xff')), "overlong varint request id");
  AssertServerHealthy();
}

TEST_F(FrameFuzzServerTest, HostileHeaderExtensionsCloseCleanly) {
  {  // deadline flag set, no deadline bytes follow
    Writer w;
    w.PutVarint(1);
    w.PutU8(static_cast<uint8_t>(Opcode::kPing) | kHeaderFlagDeadline);
    SendExpectClose(ValidFrame(w.data()), "deadline flag without field");
  }
  {  // session flag set, seq varint missing
    Writer w;
    w.PutVarint(1);
    w.PutU8(static_cast<uint8_t>(Opcode::kAppend) | kHeaderFlagSession);
    w.PutVarint(0x5E55);
    SendExpectClose(ValidFrame(w.data()), "session flag with truncated fields");
  }
  {  // zero session id: reserved, the server must not admit it
    Writer w;
    w.PutVarint(1);
    w.PutU8(static_cast<uint8_t>(Opcode::kAppend) | kHeaderFlagSession);
    w.PutVarint(0);
    w.PutVarint(5);
    SendExpectClose(ValidFrame(w.data()), "zero session id");
  }
  {  // overlong varint in the deadline slot
    Writer w;
    w.PutVarint(1);
    w.PutU8(static_cast<uint8_t>(Opcode::kPing) | kHeaderFlagDeadline);
    w.PutRaw(std::string(11, '\xff').data(), 11);
    SendExpectClose(ValidFrame(w.data()), "overlong deadline varint");
  }
  AssertServerHealthy();
}

TEST_F(FrameFuzzServerTest, HugeWireDeadlineClampedNotOverflowed) {
  // UINT64_MAX deadline_ms clamps to kMaxDeadlineMs server-side, so the
  // request executes normally instead of wrapping the expiry arithmetic
  // into the past (which would reject every request) or crashing.
  Writer w;
  RequestHeader header;
  header.request_id = 77;
  header.op = Opcode::kListStreams;
  header.has_deadline = true;
  header.deadline_ms = UINT64_MAX;
  EncodeRequestHeader(header, w);
  auto fd = ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(WriteFully(fd->get(), ValidFrame(w.data())).ok());
  char prefix[4];
  ASSERT_TRUE(ReadFully(fd->get(), prefix, sizeof(prefix)).ok());
  uint32_t len;
  std::memcpy(&len, prefix, sizeof(len));
  ASSERT_GT(len, 0u);
  ASSERT_LE(len, kMaxFrameBytes);
  std::string payload(len, '\0');
  ASSERT_TRUE(ReadFully(fd->get(), payload.data(), len).ok());
  Reader reader(payload);
  auto id = reader.ReadVarint();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 77u);
  Status remote = Status::Ok();
  ASSERT_TRUE(DecodeStatus(reader, &remote).ok());
  EXPECT_TRUE(remote.ok()) << remote;
  AssertServerHealthy();
}

TEST_F(FrameFuzzServerTest, TruncationAtEveryByteNeverCrashes) {
  const std::string frame = ValidFrame(AppendRequestPayload(1, 1, 100, 1.0));
  for (size_t cut = 0; cut <= frame.size(); ++cut) {
    SendAndHangUp(frame.substr(0, cut));
  }
  AssertServerHealthy();
}

TEST_F(FrameFuzzServerTest, MalformedBodyGetsErrorResponseNotDisconnect) {
  // Valid frame + valid header, body truncated: the stream is still framed,
  // so the server answers with kCorruption and keeps the connection.
  Writer w;
  EncodeRequestHeader(RequestHeader{42, Opcode::kAppend}, w);
  w.PutVarint(1);  // stream id, then nothing: ts/value missing
  auto fd = ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(WriteFully(fd->get(), ValidFrame(w.data())).ok());

  char prefix[4];
  ASSERT_TRUE(ReadFully(fd->get(), prefix, sizeof(prefix)).ok());
  uint32_t len;
  std::memcpy(&len, prefix, sizeof(len));
  ASSERT_GT(len, 0u);
  ASSERT_LE(len, kMaxFrameBytes);
  std::string payload(len, '\0');
  ASSERT_TRUE(ReadFully(fd->get(), payload.data(), len).ok());
  Reader reader(payload);
  auto id = reader.ReadVarint();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 42u);
  Status remote = Status::Ok();
  ASSERT_TRUE(DecodeStatus(reader, &remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kCorruption);

  // Same connection still serves a healthy request.
  std::string ping = ValidFrame([] {
    Writer p;
    EncodeRequestHeader(RequestHeader{43, Opcode::kPing}, p);
    return p.Release();
  }());
  ASSERT_TRUE(WriteFully(fd->get(), ping).ok());
  ASSERT_TRUE(ReadFully(fd->get(), prefix, sizeof(prefix)).ok());
  AssertServerHealthy();
}

TEST_F(FrameFuzzServerTest, HugeBatchCountRejectedWithoutAllocation) {
  Writer w;
  EncodeRequestHeader(RequestHeader{7, Opcode::kAppendBatch}, w);
  w.PutVarint(1);           // stream id
  w.PutVarint(UINT64_MAX);  // event count: payload holds none of them
  auto fd = ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(WriteFully(fd->get(), ValidFrame(w.data())).ok());
  char prefix[4];
  ASSERT_TRUE(ReadFully(fd->get(), prefix, sizeof(prefix)).ok());
  uint32_t len;
  std::memcpy(&len, prefix, sizeof(len));
  ASSERT_LE(len, kMaxFrameBytes);
  std::string payload(len, '\0');
  ASSERT_TRUE(ReadFully(fd->get(), payload.data(), len).ok());
  Reader reader(payload);
  ASSERT_TRUE(reader.ReadVarint().ok());
  Status remote = Status::Ok();
  ASSERT_TRUE(DecodeStatus(reader, &remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kCorruption);
  AssertServerHealthy();
}

TEST_F(FrameFuzzServerTest, RandomBytesNeverCrashOrHang) {
  Rng rng(20260808);
  for (int round = 0; round < 50; ++round) {
    const size_t n = 1 + static_cast<size_t>(rng.NextU64() % 256);
    std::string bytes;
    bytes.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      bytes.push_back(static_cast<char>(rng.NextU64() & 0xff));
    }
    // Random prefixes usually decode as absurd lengths (close) or partial
    // frames (hang up on our side); both paths must leave the server alive.
    SendAndHangUp(bytes);
  }
  AssertServerHealthy();
  EXPECT_EQ(store_->ListStreams().size(), 1u);  // no hostile writes landed
}

TEST_F(FrameFuzzServerTest, PipelinedValidThenGarbageExecutesPrefix) {
  // A valid append followed in the same write by frame garbage: the valid
  // request executes and is acked; the garbage closes the connection.
  std::string bytes = ValidFrame(AppendRequestPayload(9, 1, 50, 2.0));
  bytes += FrameWithLength(0xffffffffu, "");
  SendExpectClose(bytes, "valid-then-garbage");
  AssertServerHealthy();

  auto client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  QuerySpec spec;
  spec.op = QueryOp::kCount;
  spec.t1 = 0;
  spec.t2 = 1000;
  // The valid append executes on the worker pool and the hostile connection's
  // close does not wait for it, so poll until it lands.
  double estimate = 0;
  for (int i = 0; i < 400; ++i) {
    auto result = (*client)->Query(1, spec);
    ASSERT_TRUE(result.ok());
    estimate = result->result.estimate;
    if (estimate != 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_DOUBLE_EQ(estimate, 1.0);
}

}  // namespace
}  // namespace ss::net
