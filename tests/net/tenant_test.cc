// TenantRegistry unit tests: config parsing and validation, constant-time
// token authentication, and the tenant → StreamId namespace mapping. The
// end-to-end enforcement (hello, quotas, fair-share) lives in
// net_server_test.cc; this file pins the pure pieces.
#include <gtest/gtest.h>

#include <string>

#include "src/net/tenant.h"

namespace ss::net {
namespace {

TEST(TenantMapping, RoundTripsAndPartitions) {
  EXPECT_EQ(GlobalStreamId(1, 7), (uint64_t{1} << 48) | 7);
  EXPECT_EQ(TenantOfStream(GlobalStreamId(42, 9)), 42u);
  EXPECT_EQ(LocalStreamId(GlobalStreamId(42, 9)), 9u);
  // Same local id under different tenants → distinct global keys.
  EXPECT_NE(GlobalStreamId(1, 7), GlobalStreamId(2, 7));
  // Tenant 0 (legacy) is the identity over the low 48 bits.
  EXPECT_EQ(GlobalStreamId(0, 12345), 12345u);
  // Extremes stay in range.
  EXPECT_EQ(TenantOfStream(GlobalStreamId(kMaxTenantId, kMaxLocalStreamId)), kMaxTenantId);
  EXPECT_EQ(LocalStreamId(GlobalStreamId(kMaxTenantId, kMaxLocalStreamId)), kMaxLocalStreamId);
}

TEST(TenantRegistry, ParsesCommentsBlanksAndQuotas) {
  auto registry = TenantRegistry::Parse(
      "# tenants for the staging cluster\n"
      "\n"
      "1 acme s3cret 64 1073741824 100000\n"
      "  # indented comment\n"
      "2 umbrella hunter2 0 0 0\n");
  ASSERT_TRUE(registry.ok()) << registry.status();
  EXPECT_EQ(registry->size(), 2u);
  const TenantConfig* acme = registry->Find(1);
  ASSERT_NE(acme, nullptr);
  EXPECT_EQ(acme->name, "acme");
  EXPECT_EQ(acme->quotas.max_streams, 64u);
  EXPECT_EQ(acme->quotas.max_resident_bytes, 1073741824u);
  EXPECT_EQ(acme->quotas.ingest_events_per_sec, 100000u);
  // The cleartext token is not retained; only its digest.
  EXPECT_EQ(acme->token_digest, TenantRegistry::TokenDigest("s3cret"));
  const TenantConfig* umbrella = registry->Find(2);
  ASSERT_NE(umbrella, nullptr);
  EXPECT_EQ(umbrella->quotas.max_streams, 0u);  // 0 = unlimited
  EXPECT_EQ(registry->Find(3), nullptr);
}

TEST(TenantRegistry, RejectsMalformedConfigs) {
  // Wrong field count.
  EXPECT_FALSE(TenantRegistry::Parse("1 acme tok 0 0\n").ok());
  EXPECT_FALSE(TenantRegistry::Parse("1 acme tok 0 0 0 extra\n").ok());
  // Id 0 is reserved; ids must fit in 16 bits and parse as numbers.
  EXPECT_FALSE(TenantRegistry::Parse("0 acme tok 0 0 0\n").ok());
  EXPECT_FALSE(TenantRegistry::Parse("65536 acme tok 0 0 0\n").ok());
  EXPECT_FALSE(TenantRegistry::Parse("abc acme tok 0 0 0\n").ok());
  EXPECT_FALSE(TenantRegistry::Parse("1 acme tok 0 0 18446744073709551616\n").ok());
  // Duplicate ids and names.
  EXPECT_FALSE(TenantRegistry::Parse("1 acme tok 0 0 0\n1 other tok 0 0 0\n").ok());
  EXPECT_FALSE(TenantRegistry::Parse("1 acme tok 0 0 0\n2 acme tok 0 0 0\n").ok());
  // Names become metric label values: restricted charset.
  EXPECT_FALSE(TenantRegistry::Parse("1 ac\"me tok 0 0 0\n").ok());
  EXPECT_FALSE(TenantRegistry::Parse("1 ac{}me tok 0 0 0\n").ok());
  EXPECT_TRUE(TenantRegistry::Parse("1 Acme_prod-2 tok 0 0 0\n").ok());
  // An empty registry is a configuration error, not an empty deployment.
  EXPECT_FALSE(TenantRegistry::Parse("").ok());
  EXPECT_FALSE(TenantRegistry::Parse("# only comments\n").ok());
}

TEST(TenantRegistry, AuthenticateChecksIdAndToken) {
  auto registry = TenantRegistry::Parse("7 acme s3cret 0 0 0\n");
  ASSERT_TRUE(registry.ok());
  EXPECT_TRUE(registry->Authenticate(7, "s3cret"));
  EXPECT_FALSE(registry->Authenticate(7, "s3cre"));
  EXPECT_FALSE(registry->Authenticate(7, "s3cret "));
  EXPECT_FALSE(registry->Authenticate(7, ""));
  EXPECT_FALSE(registry->Authenticate(8, "s3cret"));   // unknown id
  EXPECT_FALSE(registry->Authenticate(0, "s3cret"));   // legacy id never nets auth
}

}  // namespace
}  // namespace ss::net
