// The resilient-RPC acceptance matrix (DESIGN.md §15): run a fixed mixed
// append/query workload through RetryingClient while FaultNet severs the
// connection at EVERY frame boundary — each sent-frame boundary, each
// received-frame boundary, and mid-frame variants one byte past each — plus
// black-hole, refused-connect, short-write, and delay runs.
//
// The invariant after any single fault:
//   1. no acked append is lost         (store count >= acks)
//   2. no append is applied twice      (store count == acks, exactly)
//   3. the client converges via backoff (the workload completes OK)
//
// A passthrough run (schedule empty) teaches the matrix the workload's frame
// count, the same way the crash matrix learns the mutating-syscall count
// before killing the store at each one.
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/summary_store.h"
#include "src/net/client.h"
#include "src/net/fault_net.h"
#include "src/net/retry_client.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/storage/file_util.h"

namespace ss::net {
namespace {

// ASSERT_TRUE only works in void functions; keeps the workload readable
// while still aborting on the first failure.
#define ASSERT_OK_OR_DIE(status_expr, what) \
  do {                                      \
    Status _s = (status_expr);              \
    ASSERT_TRUE(_s.ok()) << what << ": " << _s; \
  } while (0)

StreamConfig SmallConfig() {
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  return config;
}

// The workload ingests this many events; every run must end with EXACTLY
// this count in the store (no acked append lost, none applied twice).
constexpr uint64_t kSyncAppends = 4;
constexpr uint64_t kPipelinedAppends = 4;
constexpr uint64_t kTotalEvents = kSyncAppends + kPipelinedAppends;

class NetFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<int> counter{0};
    base_ = ::testing::TempDir() + "/ss_fault_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1));
    (void)RemoveDirRecursive(base_);
    ASSERT_TRUE(CreateDirIfMissing(base_).ok());
    SetNetOpsForTest(&fault_);
  }

  void TearDown() override {
    SetNetOpsForTest(nullptr);
    (void)RemoveDirRecursive(base_);
  }

  // Fresh store + server per run so faults can't bleed state across matrix
  // entries. Members declared store-then-server so teardown stops the server
  // before closing the store.
  struct Run {
    std::unique_ptr<SummaryStore> store;
    std::unique_ptr<Server> server;
  };
  Run StartServer(int run_id) {
    StoreOptions options;
    options.dir = base_ + "/run" + std::to_string(run_id);
    auto store = SummaryStore::Open(options);
    EXPECT_TRUE(store.ok()) << store.status();
    if (!store.ok()) return {};
    auto server = Server::Start(store->get(), ServerOptions{});
    EXPECT_TRUE(server.ok()) << server.status();
    if (!server.ok()) return {};
    return Run{std::move(store).value(), std::move(server).value()};
  }

  static ClientOptions FastRetryOptions() {
    ClientOptions options;
    options.connect_timeout_ms = 5000;
    options.rpc_timeout_ms = 2000;  // gets control back from black holes
    options.max_retries = 8;
    options.backoff_initial_ms = 1;
    options.backoff_max_ms = 20;
    return options;
  }

  // The mixed workload: create a stream, sync appends, a query, pipelined
  // appends, a flush — then verify the exact element count through a fresh
  // connection. Reports the recovery counters so callers can assert the
  // retry machinery (not luck) carried the run.
  struct WorkloadResult {
    uint64_t retries = 0;
    uint64_t reconnects = 0;
  };
  void RunWorkload(const Run& run, WorkloadResult* out) {
    ASSERT_NE(run.server, nullptr);
    auto client = RetryingClient::Connect("127.0.0.1", run.server->port(), FastRetryOptions());
    ASSERT_OK_OR_DIE(client.status(), "connect");
    RetryingClient& c = **client;

    ASSERT_OK_OR_DIE(c.CreateStream(1, SmallConfig()).status(), "create");
    for (uint64_t i = 1; i <= kSyncAppends; ++i) {
      ASSERT_OK_OR_DIE(c.Append(1, static_cast<Timestamp>(i), 1.0), "append");
    }

    QuerySpec spec;
    spec.op = QueryOp::kCount;
    spec.t1 = 0;
    spec.t2 = 1000;
    auto mid = c.Query(1, spec);
    ASSERT_OK_OR_DIE(mid.status(), "mid query");
    EXPECT_DOUBLE_EQ(mid->result.estimate, static_cast<double>(kSyncAppends));

    for (uint64_t i = 1; i <= kPipelinedAppends; ++i) {
      auto seq = c.SendAppend(1, static_cast<Timestamp>(kSyncAppends + i), 2.0);
      ASSERT_OK_OR_DIE(seq.status(), "send append");
    }
    while (c.inflight() > 0) {
      auto ack = c.ReceiveAck();
      ASSERT_OK_OR_DIE(ack.status(), "receive ack");
      EXPECT_TRUE(ack->status.ok()) << ack->status;
    }

    ASSERT_OK_OR_DIE(c.Flush(), "flush");

    // Verify through a clean connection. The matrix's sever may land on this
    // phase's frames instead of the workload's — the verify client retries
    // too, so either way the run converges and the count check holds.
    auto verify = RetryingClient::Connect("127.0.0.1", run.server->port(), FastRetryOptions());
    ASSERT_OK_OR_DIE(verify.status(), "verify connect");
    auto result = (*verify)->Query(1, spec);
    ASSERT_OK_OR_DIE(result.status(), "verify query");
    // Recovery effort is summed across both clients: whichever connection
    // the fault landed on is the one that had to retry its way back.
    out->retries = c.retries() + (*verify)->retries();
    out->reconnects = c.reconnects() + (*verify)->reconnects();
    // The gate: exact equality. Less means an acked append was lost; more
    // means a replay was applied twice.
    EXPECT_DOUBLE_EQ(result->result.estimate, static_cast<double>(kTotalEvents))
        << "acked-append count diverged after fault";
  }

  FaultNet fault_;
  std::string base_;
};

// Schedule empty: everything passes through, and we learn the workload's
// frame counts for the matrix below.
TEST_F(NetFaultTest, PassthroughBaseline) {
  Run run = StartServer(0);
  WorkloadResult r;
  RunWorkload(run, &r);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.reconnects, 0u);
  EXPECT_GE(fault_.frames_sent(), kTotalEvents);
  EXPECT_EQ(fault_.injected_resets(), 0u);
}

// Sever at every request-frame boundary (and one byte into the next frame).
TEST_F(NetFaultTest, SeverAtEverySentFrameBoundary) {
  Run baseline = StartServer(0);
  WorkloadResult r;
  RunWorkload(baseline, &r);
  if (::testing::Test::HasFatalFailure()) return;
  const uint64_t total = fault_.frames_sent();
  ASSERT_GT(total, 0u);
  baseline.server.reset();
  baseline.store.reset();

  int run_id = 1;
  for (uint64_t cut = 0; cut < total; ++cut) {
    for (uint64_t extra : {uint64_t{0}, uint64_t{1}}) {
      SCOPED_TRACE("sever after sent frame " + std::to_string(cut) + " +" +
                   std::to_string(extra) + "b");
      fault_.Reset();
      fault_.SeverAfterSentFrames(cut, extra);
      Run run = StartServer(run_id++);
      RunWorkload(run, &r);
      if (::testing::Test::HasFatalFailure()) return;
      EXPECT_EQ(fault_.injected_resets(), 1u) << "fault never fired";
      EXPECT_GE(r.reconnects, 1u) << "client recovered without reconnecting?";
    }
  }
}

// Sever at every response-frame boundary: the server may have applied the
// request whose ack we never saw — the replay-dedup scenario. Count must
// still be exact.
TEST_F(NetFaultTest, SeverAtEveryRecvFrameBoundary) {
  Run baseline = StartServer(0);
  WorkloadResult r;
  RunWorkload(baseline, &r);
  if (::testing::Test::HasFatalFailure()) return;
  const uint64_t total = fault_.frames_received();
  ASSERT_GT(total, 0u);
  baseline.server.reset();
  baseline.store.reset();

  int run_id = 1;
  for (uint64_t cut = 0; cut < total; ++cut) {
    for (uint64_t extra : {uint64_t{0}, uint64_t{1}}) {
      SCOPED_TRACE("sever after recv frame " + std::to_string(cut) + " +" +
                   std::to_string(extra) + "b");
      fault_.Reset();
      fault_.SeverAfterRecvFrames(cut, extra);
      Run run = StartServer(run_id++);
      RunWorkload(run, &r);
      if (::testing::Test::HasFatalFailure()) return;
      EXPECT_EQ(fault_.injected_resets(), 1u) << "fault never fired";
      EXPECT_GE(r.reconnects, 1u);
    }
  }
}

// Black hole mid-workload: the peer goes silent instead of resetting. Only
// the client's rpc_timeout can get control back; it must then reconnect and
// converge with an exact count.
TEST_F(NetFaultTest, BlackHoleRecoveredByLocalDeadline) {
  fault_.BlackHoleAfterSentFrames(3);
  Run run = StartServer(0);
  WorkloadResult r;
  RunWorkload(run, &r);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(fault_.blackholed_fds(), 1u);
  EXPECT_GE(r.reconnects, 1u);
}

// The server is "down" for the first connect attempts; backoff rides it out.
TEST_F(NetFaultTest, RefusedConnectsRetriedWithBackoff) {
  fault_.FailNextConnects(3);
  Run run = StartServer(0);
  WorkloadResult r;
  RunWorkload(run, &r);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(fault_.refused_connects(), 3u);
}

// Every send transfers at most 3 bytes: partial-write handling everywhere on
// the client path. No fault fires, so zero retries are expected — just a
// correct, complete workload.
TEST_F(NetFaultTest, ShortWritesEverywhere) {
  fault_.SetMaxSendBytes(3);
  Run run = StartServer(0);
  WorkloadResult r;
  RunWorkload(run, &r);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(r.retries, 0u);
}

// Fixed per-syscall latency: exercises the deadline-aware I/O paths without
// tripping them (delay << rpc_timeout).
TEST_F(NetFaultTest, InjectedDelayTolerated) {
  fault_.SetDelayMs(1);
  Run run = StartServer(0);
  WorkloadResult r;
  RunWorkload(run, &r);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(r.retries, 0u);
}

// Sever + short-writes composed: the cutoff math must hold even when frames
// trickle out a few bytes per send.
TEST_F(NetFaultTest, SeverComposesWithShortWrites) {
  Run baseline = StartServer(0);
  WorkloadResult r;
  RunWorkload(baseline, &r);
  if (::testing::Test::HasFatalFailure()) return;
  const uint64_t total = fault_.frames_sent();
  ASSERT_GT(total, 2u);
  baseline.server.reset();
  baseline.store.reset();

  fault_.Reset();
  fault_.SetMaxSendBytes(3);
  fault_.SeverAfterSentFrames(total / 2);
  Run run = StartServer(1);
  RunWorkload(run, &r);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_EQ(fault_.injected_resets(), 1u);
  EXPECT_GE(r.reconnects, 1u);
}

#undef ASSERT_OK_OR_DIE

}  // namespace
}  // namespace ss::net
