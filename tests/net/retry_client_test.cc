// RetryingClient behavior: backoff on refused connects, retry-budget
// exhaustion, reconnect + re-hello, retry-aware error mapping for
// CreateStream/DeleteStream, local rpc deadlines — and the concurrent
// exactly-once session-dedup contract this binary also runs under TSan
// (tools/ci.sh), where the server's per-(tenant, session) seq tracking and
// the slow-path locks get hammered from many threads at once.
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/summary_store.h"
#include "src/net/client.h"
#include "src/net/fault_net.h"
#include "src/net/retry_client.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/net/tenant.h"
#include "src/obs/metrics.h"
#include "src/storage/file_util.h"

namespace ss::net {
namespace {

StreamConfig SmallConfig() {
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  return config;
}

ClientOptions FastOptions() {
  ClientOptions options;
  options.connect_timeout_ms = 5000;
  options.rpc_timeout_ms = 2000;
  options.max_retries = 6;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 20;
  return options;
}

class RetryClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<int> counter{0};
    dir_ = ::testing::TempDir() + "/ss_retry_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1));
    (void)RemoveDirRecursive(dir_);
    SetNetOpsForTest(&fault_);
  }

  void TearDown() override {
    SetNetOpsForTest(nullptr);
    (void)RemoveDirRecursive(dir_);
  }

  StatusOr<std::unique_ptr<SummaryStore>> OpenStore() {
    StoreOptions options;
    options.dir = dir_;
    return SummaryStore::Open(options);
  }

  FaultNet fault_;
  std::string dir_;
};

// Refused connects are retried with backoff until the "server" comes up.
TEST_F(RetryClientTest, ConnectRidesOutRefusedConnects) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  auto server = Server::Start(store->get(), ServerOptions{});
  ASSERT_TRUE(server.ok());

  fault_.FailNextConnects(3);
  auto client = RetryingClient::Connect("127.0.0.1", (*server)->port(), FastOptions());
  ASSERT_TRUE(client.ok()) << client.status();
  EXPECT_EQ(fault_.refused_connects(), 3u);
  EXPECT_TRUE((*client)->Ping().ok());
}

// Once the retry budget is spent the typed transport error surfaces.
TEST_F(RetryClientTest, RetryBudgetExhaustionSurfacesError) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  auto server = Server::Start(store->get(), ServerOptions{});
  ASSERT_TRUE(server.ok());

  ClientOptions options = FastOptions();
  options.max_retries = 2;
  fault_.FailNextConnects(100);
  auto client = RetryingClient::Connect("127.0.0.1", (*server)->port(), options);
  EXPECT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kIoError) << client.status();
}

// A severed connection is rebuilt transparently, the hello handshake is
// replayed, and the recovery is observable: retries()/reconnects() and the
// ss_net_{retries,reconnects}_total counters all move.
TEST_F(RetryClientTest, ReconnectReplaysHello) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  ServerOptions options;
  auto parsed = TenantRegistry::Parse("1 alpha alpha-secret 0 0 0\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  options.tenants = std::make_shared<const TenantRegistry>(std::move(parsed).value());
  auto server = Server::Start(store->get(), options);
  ASSERT_TRUE(server.ok());

  Counter& retries = MetricRegistry::Default().GetCounter("ss_net_retries_total");
  Counter& reconnects = MetricRegistry::Default().GetCounter("ss_net_reconnects_total");
  const uint64_t retries_before = retries.value();
  const uint64_t reconnects_before = reconnects.value();

  auto client = RetryingClient::Connect("127.0.0.1", (*server)->port(), FastOptions());
  ASSERT_TRUE(client.ok()) << client.status();
  RetryingClient& c = **client;
  ASSERT_TRUE(c.Hello(1, "alpha-secret").ok());
  ASSERT_TRUE(c.CreateStream(1, SmallConfig()).ok());

  // Kill the live connection out from under the client. The next RPC hits
  // ECONNRESET, reconnects, re-hellos (else the server answers
  // kPermissionDenied), and succeeds.
  fault_.SeverAfterSentFrames(0);
  Status s = c.Append(1, 1, 1.0);
  EXPECT_TRUE(s.ok()) << s;
  EXPECT_GE(c.retries(), 1u);
  EXPECT_GE(c.reconnects(), 1u);
  EXPECT_GT(retries.value(), retries_before);
  EXPECT_GT(reconnects.value(), reconnects_before);

  // And the re-authenticated connection still sees the tenant's namespace.
  auto streams = c.ListStreams();
  ASSERT_TRUE(streams.ok());
  EXPECT_EQ(streams->size(), 1u);
}

// kAlreadyExists/kNotFound are only mapped to success on a RETRY — a
// first-attempt duplicate create or missing delete stays an error.
TEST_F(RetryClientTest, FirstAttemptErrorsAreNotMasked) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  auto server = Server::Start(store->get(), ServerOptions{});
  ASSERT_TRUE(server.ok());

  auto client = RetryingClient::Connect("127.0.0.1", (*server)->port(), FastOptions());
  ASSERT_TRUE(client.ok());
  RetryingClient& c = **client;
  ASSERT_TRUE(c.CreateStream(5, SmallConfig()).ok());
  EXPECT_EQ(c.CreateStream(5, SmallConfig()).status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(c.DeleteStream(99).code(), StatusCode::kNotFound);
}

// A black-holed peer is bounded by rpc_timeout_ms: the raw Client reports
// kDeadlineExceeded (instead of hanging forever), which the retrying layer
// treats as transport failure and recovers from.
TEST_F(RetryClientTest, LocalRpcTimeoutBoundsBlackHole) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  auto server = Server::Start(store->get(), ServerOptions{});
  ASSERT_TRUE(server.ok());

  ClientOptions options;
  options.rpc_timeout_ms = 100;
  fault_.BlackHoleAfterSentFrames(0);
  auto raw = Client::Connect("127.0.0.1", (*server)->port(), options);
  ASSERT_TRUE(raw.ok());
  Status s = (*raw)->Ping();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s;

  // Same fault through the retrying client: reconnect converges.
  fault_.Reset();
  fault_.BlackHoleAfterSentFrames(0);
  ClientOptions retry_options = FastOptions();
  retry_options.rpc_timeout_ms = 100;
  auto client = RetryingClient::Connect("127.0.0.1", (*server)->port(), retry_options);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Ping().ok());
  EXPECT_GE((*client)->reconnects(), 1u);
}

// Pipelined ingest across a sever: the un-acked tail is replayed on the new
// connection, every queued seq is acked, and the store count is exact.
TEST_F(RetryClientTest, PipelinedTailReplayedAfterSever) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  auto server = Server::Start(store->get(), ServerOptions{});
  ASSERT_TRUE(server.ok());

  auto client = RetryingClient::Connect("127.0.0.1", (*server)->port(), FastOptions());
  ASSERT_TRUE(client.ok());
  RetryingClient& c = **client;
  ASSERT_TRUE(c.CreateStream(1, SmallConfig()).ok());

  constexpr uint64_t kEvents = 16;
  // Lose the ack stream partway through: the server applies some of these,
  // but the client never hears; replay + dedup must reconcile exactly.
  fault_.SeverAfterRecvFrames(fault_.frames_received() + 4);
  for (uint64_t i = 1; i <= kEvents; ++i) {
    auto seq = c.SendAppend(1, static_cast<Timestamp>(i), 1.0);
    ASSERT_TRUE(seq.ok()) << seq.status();
  }
  uint64_t acked = 0;
  while (c.inflight() > 0) {
    auto ack = c.ReceiveAck();
    ASSERT_TRUE(ack.ok()) << ack.status();
    EXPECT_TRUE(ack->status.ok()) << ack->status;
    ++acked;
  }
  EXPECT_EQ(acked, kEvents);
  EXPECT_GE(c.reconnects(), 1u);

  ASSERT_TRUE(c.Flush().ok());
  QuerySpec spec;
  spec.op = QueryOp::kCount;
  spec.t1 = 0;
  spec.t2 = 1000;
  auto result = c.Query(1, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->result.estimate, static_cast<double>(kEvents));
}

// The concurrency gate (runs under TSan in CI): many clients appending into
// separate streams while two more deliberately race the SAME session's seq
// space. Per-stream counts must come out exact — the session table's locks
// either serialize correctly or TSan/the count assertions light up.
TEST_F(RetryClientTest, ConcurrentSessionsApplyExactlyOnce) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  auto server = Server::Start(store->get(), ServerOptions{});
  ASSERT_TRUE(server.ok());
  const uint16_t port = (*server)->port();

  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 32;
  {
    auto admin = Client::Connect("127.0.0.1", port);
    ASSERT_TRUE(admin.ok());
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_TRUE((*admin)->CreateStream(static_cast<StreamId>(t + 1), SmallConfig()).ok());
    }
    ASSERT_TRUE((*admin)->CreateStream(100, SmallConfig()).ok());
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Independent sessions, independent streams.
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([port, t, &failures] {
      auto client = RetryingClient::Connect("127.0.0.1", port, FastOptions());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (uint64_t i = 1; i <= kPerThread; ++i) {
        if (!(*client)->Append(static_cast<StreamId>(t + 1), static_cast<Timestamp>(i), 1.0).ok()) {
          ++failures;
        }
      }
    });
  }
  // Two raw clients racing one shared session over one stream: both walk
  // seqs 1..kPerThread, so every seq must be applied exactly once whichever
  // connection wins it.
  constexpr uint64_t kSharedSession = 0x5E55;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([port, &failures] {
      auto client = Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        ++failures;
        return;
      }
      (*client)->SetSession(kSharedSession);
      for (uint64_t i = 1; i <= kPerThread; ++i) {
        (*client)->SetNextSeq(i);
        if (!(*client)->Append(100, static_cast<Timestamp>(i), 1.0).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);

  auto verify = Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(verify.ok());
  ASSERT_TRUE((*verify)->Flush().ok());
  QuerySpec spec;
  spec.op = QueryOp::kCount;
  spec.t1 = 0;
  spec.t2 = 1000;
  for (int t = 0; t < kThreads; ++t) {
    auto result = (*verify)->Query(static_cast<StreamId>(t + 1), spec);
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result->result.estimate, static_cast<double>(kPerThread));
  }
  auto shared = (*verify)->Query(100, spec);
  ASSERT_TRUE(shared.ok());
  EXPECT_DOUBLE_EQ(shared->result.estimate, static_cast<double>(kPerThread))
      << "racing session replicas double-applied or lost a seq";
}

}  // namespace
}  // namespace ss::net
