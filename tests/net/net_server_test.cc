// End-to-end tests for the sserver service core: request routing, per-
// connection pipelining, shed/block backpressure, and the durable-ack
// guarantee under a hard server kill (acked appends must survive WAL replay).
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/summary_store.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/net/tenant.h"
#include "src/obs/metrics.h"
#include "src/storage/file_util.h"

namespace ss::net {
namespace {

StreamConfig SmallConfig() {
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  return config;
}

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The pid keeps the dir unique across processes: ctest runs each test as
    // its own filtered process, so a process-local counter alone collides
    // when tests from this binary run concurrently (-j), and SetUp's cleanup
    // would wipe a sibling test's live store.
    static std::atomic<int> counter{0};
    dir_ = ::testing::TempDir() + "/ss_net_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1));
    (void)RemoveDirRecursive(dir_);  // stale store from a previous run
  }

  StatusOr<std::unique_ptr<SummaryStore>> OpenStore(bool sync_wal = false) {
    StoreOptions options;
    options.dir = dir_;
    options.lsm.sync_wal = sync_wal;
    return SummaryStore::Open(options);
  }

  std::string dir_;
};

TEST_F(NetServerTest, RoundtripAllOps) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok()) << store.status();
  auto server = Server::Start(store->get(), ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status();

  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status();
  Client& c = **client;

  ASSERT_TRUE(c.Ping().ok());

  auto sid = c.CreateStream(0, SmallConfig());
  ASSERT_TRUE(sid.ok()) << sid.status();
  EXPECT_EQ(*sid, 1u);
  auto sid2 = c.CreateStream(9, SmallConfig());
  ASSERT_TRUE(sid2.ok()) << sid2.status();
  EXPECT_EQ(*sid2, 9u);

  auto listed = c.ListStreams();
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), 2u);

  ASSERT_TRUE(c.Append(*sid, 10, 1.5).ok());
  std::vector<Event> batch;
  for (int i = 0; i < 100; ++i) {
    batch.push_back(Event{static_cast<Timestamp>(20 + i), static_cast<double>(i)});
  }
  ASSERT_TRUE(c.AppendBatch(*sid, batch).ok());

  QuerySpec spec;
  spec.op = QueryOp::kCount;
  spec.t1 = 0;
  spec.t2 = 1000;
  auto result = c.Query(*sid, spec);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(result->result.estimate, 101.0);
  EXPECT_TRUE(result->result.exact);

  // Remote explain ships the rendered trace text.
  spec.collect_trace = true;
  auto traced = c.Query(*sid, spec);
  ASSERT_TRUE(traced.ok());
  EXPECT_NE(traced->trace_text.find("query trace"), std::string::npos);

  spec.collect_trace = false;
  std::vector<StreamId> both = {*sid, *sid2};
  auto agg = c.QueryAggregate(both, spec);
  ASSERT_TRUE(agg.ok()) << agg.status();
  EXPECT_DOUBLE_EQ(agg->result.estimate, 101.0);

  ASSERT_TRUE(c.BeginLandmark(*sid2, 5).ok());
  ASSERT_TRUE(c.Append(*sid2, 6, 42.0).ok());
  ASSERT_TRUE(c.EndLandmark(*sid2, 7).ok());
  ASSERT_TRUE(c.Flush().ok());

  auto scrub = c.Scrub(/*repair=*/false);
  ASSERT_TRUE(scrub.ok()) << scrub.status();
  EXPECT_GT(scrub->windows_checked, 0u);
  EXPECT_EQ(scrub->errors, 0u);

  auto stats = c.Stats(/*prometheus=*/true);
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("ss_net_requests_total"), std::string::npos);

  auto infos = c.StreamInfos(0);
  ASSERT_TRUE(infos.ok());
  ASSERT_EQ(infos->size(), 2u);
  EXPECT_EQ((*infos)[0].id, *sid);
  EXPECT_EQ((*infos)[0].element_count, 101u);
  EXPECT_EQ((*infos)[1].landmark_window_count, 1u);

  // Errors come back as statuses, not closed connections.
  EXPECT_EQ(c.DeleteStream(777).code(), StatusCode::kNotFound);
  EXPECT_TRUE(c.Ping().ok());
  ASSERT_TRUE(c.DeleteStream(*sid2).ok());
}

TEST_F(NetServerTest, PipelinedAppendsAckOutOfOrderSafe) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  auto server = Server::Start(store->get(), ServerOptions{});
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  Client& c = **client;
  auto sid = c.CreateStream(0, SmallConfig());
  ASSERT_TRUE(sid.ok());

  constexpr int kAppends = 256;
  std::set<uint64_t> sent;
  for (int i = 0; i < kAppends; ++i) {
    auto id = c.SendAppend(*sid, i + 1, 1.0);
    ASSERT_TRUE(id.ok()) << id.status();
    sent.insert(*id);
  }
  EXPECT_EQ(c.inflight(), static_cast<size_t>(kAppends));
  std::set<uint64_t> acked;
  for (int i = 0; i < kAppends; ++i) {
    auto ack = c.ReceiveAck();
    ASSERT_TRUE(ack.ok()) << ack.status();
    EXPECT_TRUE(ack->status.ok()) << ack->status;
    EXPECT_TRUE(sent.contains(ack->request_id));
    acked.insert(ack->request_id);
  }
  EXPECT_EQ(acked, sent);  // every request acked exactly once
  EXPECT_EQ(c.inflight(), 0u);

  QuerySpec spec;
  spec.op = QueryOp::kCount;
  spec.t1 = 0;
  spec.t2 = kAppends + 1;
  auto result = c.Query(*sid, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->result.estimate, static_cast<double>(kAppends));

  // Graceful stop: the next read observes a clean close, not a hang.
  (*server)->Stop();
  EXPECT_FALSE(c.Ping().ok());
}

TEST_F(NetServerTest, ShedPolicyRejectsOversizedBacklog) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  ServerOptions options;
  options.backpressure = ServerOptions::Backpressure::kShed;
  options.ingest_queue_events = 8;
  auto server = Server::Start(store->get(), options);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  Client& c = **client;
  auto sid = c.CreateStream(0, SmallConfig());
  ASSERT_TRUE(sid.ok());

  Counter& shed = MetricRegistry::Default().GetCounter("ss_net_backpressure_shed_total");
  const uint64_t shed_before = shed.value();

  // One batch bigger than the whole admission budget: shed outright.
  std::vector<Event> big;
  for (int i = 0; i < 64; ++i) {
    big.push_back(Event{static_cast<Timestamp>(i + 1), 1.0});
  }
  Status s = c.AppendBatch(*sid, big);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s;
  EXPECT_GT(shed.value(), shed_before);

  // The connection survives a shed and small batches still land.
  std::vector<Event> small = {Event{100, 1.0}, Event{101, 2.0}};
  EXPECT_TRUE(c.AppendBatch(*sid, small).ok());
}

TEST_F(NetServerTest, BlockPolicyThrottlesAndLosesNothing) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  ServerOptions options;
  options.backpressure = ServerOptions::Backpressure::kBlock;
  options.ingest_queue_events = 4;  // tiny budget: a pipelined storm must block
  auto server = Server::Start(store->get(), options);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  Client& c = **client;
  auto sid = c.CreateStream(0, SmallConfig());
  ASSERT_TRUE(sid.ok());

  Counter& blocked = MetricRegistry::Default().GetCounter("ss_net_backpressure_blocked_total");
  const uint64_t blocked_before = blocked.value();

  // All 300 tiny frames fit in the kernel socket buffers, so the sends
  // complete even while the server's reads are withheld (TCP backpressure);
  // Client is not thread-safe, so send first and drain the acks after.
  constexpr int kAppends = 300;
  for (int i = 0; i < kAppends; ++i) {
    auto id = c.SendAppend(*sid, i + 1, 1.0);
    ASSERT_TRUE(id.ok()) << id.status();
  }
  int acked = 0;
  for (int i = 0; i < kAppends; ++i) {
    auto ack = c.ReceiveAck();
    ASSERT_TRUE(ack.ok()) << ack.status();
    ASSERT_TRUE(ack->status.ok()) << ack->status;
    ++acked;
  }
  EXPECT_EQ(acked, kAppends);
  EXPECT_GT(blocked.value(), blocked_before);  // the budget actually engaged

  QuerySpec spec;
  spec.op = QueryOp::kCount;
  spec.t1 = 0;
  spec.t2 = kAppends + 1;
  auto result = c.Query(*sid, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->result.estimate, static_cast<double>(kAppends));
}

TEST_F(NetServerTest, AckedAppendsSurviveHardKill) {
  constexpr int kAppends = 200;
  int acked = 0;
  {
    auto store = OpenStore(/*sync_wal=*/true);
    ASSERT_TRUE(store.ok());
    auto server = Server::Start(store->get(), ServerOptions{});
    ASSERT_TRUE(server.ok());
    auto client = Client::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    Client& c = **client;
    auto sid = c.CreateStream(3, SmallConfig());
    ASSERT_TRUE(sid.ok());

    for (int i = 0; i < kAppends; ++i) {
      ASSERT_TRUE(c.SendAppend(*sid, i + 1, 1.0).ok());
    }
    // Take roughly half the acks, then kill the server mid-stream.
    for (int i = 0; i < kAppends / 2; ++i) {
      auto ack = c.ReceiveAck();
      ASSERT_TRUE(ack.ok()) << ack.status();
      if (ack->status.ok()) {
        ++acked;
      }
    }
    (*server)->Abort();
    // Drain whatever raced out before the close; acks already on the wire
    // still count (the server flushed before sending them).
    for (;;) {
      auto ack = c.ReceiveAck();
      if (!ack.ok()) {
        break;  // reset/EOF: the kill
      }
      if (ack->status.ok()) {
        ++acked;
      }
    }
    // Hard kill: leak the store so no destructor flush makes recovery look
    // better than it is. WAL replay alone must cover every acked append.
    (void)store->release();
  }
  ASSERT_GT(acked, 0);

  auto reopened = OpenStore(/*sync_wal=*/true);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto stream = (*reopened)->GetStream(3);
  ASSERT_TRUE(stream.ok()) << stream.status();
  EXPECT_GE((*stream)->element_count(), static_cast<uint64_t>(acked))
      << "acked appends lost across kill+replay";
}

TEST_F(NetServerTest, ManyConnectionsConcurrently) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  auto server = Server::Start(store->get(), ServerOptions{});
  ASSERT_TRUE(server.ok());

  // One stream per connection: appends from different connections interleave
  // arbitrarily, and a shared monotone stream would reject out-of-order ts.
  constexpr int kConns = 32;
  constexpr int kPerConn = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kConns; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect("127.0.0.1", (*server)->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      Client& c = **client;
      const StreamId sid = static_cast<StreamId>(t + 1);
      if (!c.CreateStream(sid, SmallConfig()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kPerConn; ++i) {
        if (!c.SendAppend(sid, i + 1, 1.0).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
      for (int i = 0; i < kPerConn; ++i) {
        auto ack = c.ReceiveAck();
        if (!ack.ok() || !ack->status.ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);

  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  std::vector<StreamId> all;
  for (int t = 0; t < kConns; ++t) {
    all.push_back(static_cast<StreamId>(t + 1));
  }
  QuerySpec spec;
  spec.op = QueryOp::kCount;
  spec.t1 = 0;
  spec.t2 = kPerConn + 1;
  auto result = (*client)->QueryAggregate(all, spec);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(result->result.estimate, static_cast<double>(kConns * kPerConn));
}

// ------------------------------------------------------------- multi-tenancy

std::shared_ptr<const TenantRegistry> Registry(std::string_view text) {
  auto parsed = TenantRegistry::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  if (!parsed.ok()) {
    return nullptr;
  }
  return std::make_shared<const TenantRegistry>(std::move(parsed).value());
}

// Two tenants with no resource quotas (isolation/auth tests).
std::shared_ptr<const TenantRegistry> TwoTenants() {
  return Registry(
      "1 alpha alpha-secret 0 0 0\n"
      "2 beta  beta-secret  0 0 0\n");
}

TEST_F(NetServerTest, HelloRequiredAndTokenChecked) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  ServerOptions options;
  options.tenants = TwoTenants();
  ASSERT_NE(options.tenants, nullptr);
  auto server = Server::Start(store->get(), options);
  ASSERT_TRUE(server.ok()) << server.status();

  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  Client& c = **client;

  // Anything before a hello is denied — and the connection survives it.
  EXPECT_EQ(c.Ping().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(c.CreateStream(0, SmallConfig()).status().code(), StatusCode::kPermissionDenied);

  // Bad token and unknown tenant earn the same denial.
  EXPECT_EQ(c.Hello(1, "wrong").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(c.Hello(42, "alpha-secret").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(c.Ping().code(), StatusCode::kPermissionDenied);  // still locked out

  ASSERT_TRUE(c.Hello(1, "alpha-secret").ok());
  EXPECT_TRUE(c.Ping().ok());
  // A second hello on an authenticated connection is an error, not a switch.
  EXPECT_EQ(c.Hello(2, "beta-secret").code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(c.Ping().ok());
}

TEST_F(NetServerTest, LegacyServerIgnoresHello) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  auto server = Server::Start(store->get(), ServerOptions{});
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  // Tenant-configured clients work against a single-tenant server.
  EXPECT_TRUE((*client)->Hello(7, "whatever").ok());
  EXPECT_TRUE((*client)->Ping().ok());
}

TEST_F(NetServerTest, TenantNamespacesIsolateStreams) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  ServerOptions options;
  options.tenants = TwoTenants();
  auto server = Server::Start(store->get(), options);
  ASSERT_TRUE(server.ok());

  auto alpha = Client::Connect("127.0.0.1", (*server)->port());
  auto beta = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(alpha.ok() && beta.ok());
  Client& a = **alpha;
  Client& b = **beta;
  ASSERT_TRUE(a.Hello(1, "alpha-secret").ok());
  ASSERT_TRUE(b.Hello(2, "beta-secret").ok());

  // Both tenants own a "stream 7" — distinct store keys.
  ASSERT_TRUE(a.CreateStream(7, SmallConfig()).ok());
  ASSERT_TRUE(b.CreateStream(7, SmallConfig()).ok());
  ASSERT_TRUE(a.Append(7, 1, 10.0).ok());
  ASSERT_TRUE(b.Append(7, 1, 20.0).ok());
  std::vector<Event> more = {{2, 10.0}, {3, 10.0}};
  ASSERT_TRUE(a.AppendBatch(7, more).ok());

  QuerySpec spec;
  spec.op = QueryOp::kCount;
  spec.t1 = 0;
  spec.t2 = 100;
  auto a_count = a.Query(7, spec);
  auto b_count = b.Query(7, spec);
  ASSERT_TRUE(a_count.ok() && b_count.ok());
  EXPECT_DOUBLE_EQ(a_count->result.estimate, 3.0);
  EXPECT_DOUBLE_EQ(b_count->result.estimate, 1.0);

  // Listings are namespace-local (and report local ids).
  auto a_list = a.ListStreams();
  auto b_list = b.ListStreams();
  ASSERT_TRUE(a_list.ok() && b_list.ok());
  EXPECT_EQ(*a_list, std::vector<StreamId>{7});
  EXPECT_EQ(*b_list, std::vector<StreamId>{7});
  auto b_infos = b.StreamInfos(0);
  ASSERT_TRUE(b_infos.ok());
  ASSERT_EQ(b_infos->size(), 1u);
  EXPECT_EQ((*b_infos)[0].id, 7u);
  EXPECT_EQ((*b_infos)[0].element_count, 1u);

  // Cross-tenant reach-through: a stream id that does not exist in the
  // caller's namespace is NotFound, and a forged global id (tenant bits set)
  // is a flat denial.
  EXPECT_EQ(b.DeleteStream(8).code(), StatusCode::kNotFound);
  const StreamId forged = (StreamId{1} << 48) | 7;  // alpha's stream 7
  EXPECT_EQ(b.Query(forged, spec).status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(b.DeleteStream(forged).code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(b.Append(forged, 9, 1.0).code(), StatusCode::kPermissionDenied);

  // Deleting beta's stream 7 leaves alpha's intact.
  ASSERT_TRUE(b.DeleteStream(7).ok());
  EXPECT_TRUE(a.Query(7, spec).ok());

  // Auto-assigned ids are tenant-local too (first free local id, not a
  // global sequence).
  auto b_auto = b.CreateStream(0, SmallConfig());
  ASSERT_TRUE(b_auto.ok()) << b_auto.status();
  EXPECT_EQ(*b_auto, 1u);
}

TEST_F(NetServerTest, TenantQuotasReturnTypedErrors) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  ServerOptions options;
  // Each quota gets its own tenant so one limit can't mask another:
  // alpha: 2 streams max + 32 events/s; gamma: ~1 KiB resident; beta: none.
  options.tenants = Registry(
      "1 alpha alpha-secret 2 0    32\n"
      "2 beta  beta-secret  0 0    0\n"
      "3 gamma gamma-secret 0 1024 0\n");
  ASSERT_NE(options.tenants, nullptr);
  auto server = Server::Start(store->get(), options);
  ASSERT_TRUE(server.ok());

  auto alpha = Client::Connect("127.0.0.1", (*server)->port());
  auto beta = Client::Connect("127.0.0.1", (*server)->port());
  auto gamma = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(alpha.ok() && beta.ok() && gamma.ok());
  Client& a = **alpha;
  Client& b = **beta;
  Client& g = **gamma;
  ASSERT_TRUE(a.Hello(1, "alpha-secret").ok());
  ASSERT_TRUE(b.Hello(2, "beta-secret").ok());
  ASSERT_TRUE(g.Hello(3, "gamma-secret").ok());

  // Stream-count quota: the third create is a typed error.
  ASSERT_TRUE(a.CreateStream(1, SmallConfig()).ok());
  ASSERT_TRUE(a.CreateStream(2, SmallConfig()).ok());
  EXPECT_EQ(a.CreateStream(3, SmallConfig()).status().code(),
            StatusCode::kResourceExhausted);
  ASSERT_TRUE(a.DeleteStream(2).ok());
  EXPECT_TRUE(a.CreateStream(3, SmallConfig()).ok());  // freed a slot

  // Ingest-rate quota: the bucket holds one second's worth (32 events);
  // pipelining far more than that in one burst must hit the limiter.
  std::vector<Event> chunk;
  for (int i = 0; i < 16; ++i) {
    chunk.push_back(Event{static_cast<Timestamp>(i + 1), 1.0});
  }
  Status first = a.AppendBatch(1, chunk);
  ASSERT_TRUE(first.ok()) << first;
  bool rate_limited = false;
  for (int burst = 0; burst < 4 && !rate_limited; ++burst) {
    for (Event& e : chunk) {
      e.ts += 16;
    }
    Status s = a.AppendBatch(1, chunk);
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s;
      rate_limited = true;
    }
  }
  EXPECT_TRUE(rate_limited);

  // Byte quota: appends must eventually turn into typed errors as resident
  // bytes cross ~1 KiB. beta (no quota) keeps ingesting the same load.
  bool byte_limited = false;
  ASSERT_TRUE(b.CreateStream(1, SmallConfig()).ok());
  ASSERT_TRUE(g.CreateStream(1, SmallConfig()).ok());
  std::vector<Event> wave;
  for (int round = 0; round < 200 && !byte_limited; ++round) {
    wave.clear();
    for (int i = 0; i < 64; ++i) {
      wave.push_back(Event{static_cast<Timestamp>(round * 64 + i + 1000), 1.0});
    }
    Status s = g.AppendBatch(1, wave);
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s;
      byte_limited = true;
    }
    ASSERT_TRUE(b.AppendBatch(1, wave).ok());
  }
  EXPECT_TRUE(byte_limited);
}

TEST_F(NetServerTest, FairShareShedIsolatesQuietTenant) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  ServerOptions options;
  options.tenants = TwoTenants();
  options.backpressure = ServerOptions::Backpressure::kShed;
  options.ingest_queue_events = 16;  // per-tenant share: 8
  auto server = Server::Start(store->get(), options);
  ASSERT_TRUE(server.ok());

  auto hot = Client::Connect("127.0.0.1", (*server)->port());
  auto quiet = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(hot.ok() && quiet.ok());
  Client& h = **hot;
  Client& q = **quiet;
  ASSERT_TRUE(h.Hello(1, "alpha-secret").ok());
  ASSERT_TRUE(q.Hello(2, "beta-secret").ok());
  ASSERT_TRUE(h.CreateStream(1, SmallConfig()).ok());
  ASSERT_TRUE(q.CreateStream(1, SmallConfig()).ok());

  // Hot tenant: every batch exceeds its 8-event share, so each one is shed —
  // under the old single global budget (16) these would have been admitted
  // and quiet's headroom consumed.
  std::vector<Event> oversized;
  for (int i = 0; i < 10; ++i) {
    oversized.push_back(Event{static_cast<Timestamp>(i + 1), 1.0});
  }
  std::vector<Event> small = {{0, 1.0}};
  for (int round = 0; round < 10; ++round) {
    Status hs = h.AppendBatch(1, oversized);
    EXPECT_EQ(hs.code(), StatusCode::kFailedPrecondition) << hs;
    // Quiet tenant's small appends never shed while the hot tenant hammers.
    small[0].ts = round + 1;
    Status qs = q.AppendBatch(1, small);
    EXPECT_TRUE(qs.ok()) << qs;
  }
}

TEST_F(NetServerTest, FairShareBlockThrottlesOnlyHotTenant) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  ServerOptions options;
  options.tenants = TwoTenants();
  options.backpressure = ServerOptions::Backpressure::kBlock;
  options.ingest_queue_events = 16;  // per-tenant share: 8
  auto server = Server::Start(store->get(), options);
  ASSERT_TRUE(server.ok());

  auto hot = Client::Connect("127.0.0.1", (*server)->port());
  auto quiet = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(hot.ok() && quiet.ok());
  Client& h = **hot;
  Client& q = **quiet;
  ASSERT_TRUE(h.Hello(1, "alpha-secret").ok());
  ASSERT_TRUE(q.Hello(2, "beta-secret").ok());
  ASSERT_TRUE(h.CreateStream(1, SmallConfig()).ok());
  ASSERT_TRUE(q.CreateStream(1, SmallConfig()).ok());

  Counter& blocked = MetricRegistry::Default().GetCounter("ss_net_backpressure_blocked_total",
                                                          "tenant=\"alpha\"");
  const uint64_t blocked_before = blocked.value();

  // Pipeline far more than the hot tenant's share; its connection throttles
  // (TCP backpressure) but nothing is lost.
  constexpr int kHotAppends = 200;
  for (int i = 0; i < kHotAppends; ++i) {
    ASSERT_TRUE(h.SendAppend(1, i + 1, 1.0).ok());
  }
  // Meanwhile the quiet tenant's synchronous appends sail through.
  for (int i = 0; i < 20; ++i) {
    Status s = q.Append(1, i + 1, 2.0);
    EXPECT_TRUE(s.ok()) << s;
  }
  int acked = 0;
  for (int i = 0; i < kHotAppends; ++i) {
    auto ack = h.ReceiveAck();
    ASSERT_TRUE(ack.ok()) << ack.status();
    ASSERT_TRUE(ack->status.ok()) << ack->status;
    ++acked;
  }
  EXPECT_EQ(acked, kHotAppends);
  EXPECT_GT(blocked.value(), blocked_before);  // hot tenant's share engaged
}

// --------------------------------------------- pipelined shed ordering (pin)

// Reads one response frame from a raw socket and returns its request id.
uint64_t ReadResponseId(int fd) {
  char prefix[4];
  EXPECT_TRUE(ReadFully(fd, prefix, sizeof(prefix)).ok());
  uint32_t len = 0;
  std::memcpy(&len, prefix, sizeof(len));
  EXPECT_GT(len, 0u);
  EXPECT_LE(len, kMaxFrameBytes);
  std::string payload(len, '\0');
  EXPECT_TRUE(ReadFully(fd, payload.data(), len).ok());
  Reader reader(payload);
  auto id = reader.ReadVarint();
  EXPECT_TRUE(id.ok());
  return id.ok() ? *id : 0;
}

// Pin for the pipelined-ordering contract (DESIGN.md §12): a shed rejection
// must be delivered after the responses of every earlier request on the
// connection. The old code answered sheds synchronously from the epoll
// thread while earlier frames still sat in exec_queue, so the rejection
// could overtake them.
TEST_F(NetServerTest, ShedResponsesArriveInPipelineOrder) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  ServerOptions options;
  options.backpressure = ServerOptions::Backpressure::kShed;
  options.ingest_queue_events = 8;
  auto server = Server::Start(store->get(), options);
  ASSERT_TRUE(server.ok());

  auto fd = ConnectTcp("127.0.0.1", (*server)->port());
  ASSERT_TRUE(fd.ok()) << fd.status();

  // Create the stream (and seed it) synchronously first.
  {
    Writer req;
    EncodeRequestHeader(RequestHeader{1, Opcode::kCreateStream}, req);
    req.PutVarint(5);
    SmallConfig().Serialize(req);
    std::string frame;
    ASSERT_TRUE(AppendFrame(req.data(), &frame).ok());
    ASSERT_TRUE(WriteFully(fd->get(), frame).ok());
    EXPECT_EQ(ReadResponseId(fd->get()), 1u);
  }

  // One write carrying: queries with ids 2..17, then an oversized append
  // batch (id 18) that the shed policy must reject. Its rejection must
  // arrive LAST.
  std::string burst;
  QuerySpec spec;
  spec.op = QueryOp::kCount;
  spec.t1 = 0;
  spec.t2 = 1000;
  constexpr uint64_t kQueries = 16;
  for (uint64_t id = 2; id <= 1 + kQueries; ++id) {
    Writer req;
    EncodeRequestHeader(RequestHeader{id, Opcode::kQuery}, req);
    req.PutVarint(5);
    EncodeQuerySpec(spec, req);
    ASSERT_TRUE(AppendFrame(req.data(), &burst).ok());
  }
  {
    Writer req;
    EncodeRequestHeader(RequestHeader{2 + kQueries, Opcode::kAppendBatch}, req);
    req.PutVarint(5);
    std::vector<Event> big;
    for (int i = 0; i < 64; ++i) {  // 64 > the whole 8-event budget: shed
      big.push_back(Event{static_cast<Timestamp>(i + 1), 1.0});
    }
    EncodeEventBatch(big, req);
    ASSERT_TRUE(AppendFrame(req.data(), &burst).ok());
  }
  ASSERT_TRUE(WriteFully(fd->get(), burst).ok());

  for (uint64_t id = 2; id <= 2 + kQueries; ++id) {
    EXPECT_EQ(ReadResponseId(fd->get()), id) << "response overtook an earlier request";
  }
}

// ------------------------------------------- resilient RPC (DESIGN.md §15)

// A legacy client's frames — plain opcode byte, no flag bits, no trailing
// header fields — must behave bit-for-bit as before the deadline/session
// extension: same request bytes, same response bytes.
TEST_F(NetServerTest, LegacyFramesBitForBitUnaffected) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  auto server = Server::Start(store->get(), ServerOptions{});
  ASSERT_TRUE(server.ok());
  auto fd = ConnectTcp("127.0.0.1", (*server)->port());
  ASSERT_TRUE(fd.ok());

  // Hand-rolled legacy header: varint request id, then the bare opcode byte.
  auto legacy_frame = [](uint64_t id, Opcode op, const Writer& body) {
    Writer req;
    req.PutVarint(id);
    req.PutU8(static_cast<uint8_t>(op));
    req.PutRaw(body.data().data(), body.data().size());
    std::string frame;
    EXPECT_TRUE(AppendFrame(req.data(), &frame).ok());
    return frame;
  };

  ASSERT_TRUE(WriteFully(fd->get(), legacy_frame(1, Opcode::kPing, Writer())).ok());
  EXPECT_EQ(ReadResponseId(fd->get()), 1u);

  Writer create;
  create.PutVarint(4);
  SmallConfig().Serialize(create);
  ASSERT_TRUE(WriteFully(fd->get(), legacy_frame(2, Opcode::kCreateStream, create)).ok());
  EXPECT_EQ(ReadResponseId(fd->get()), 2u);

  Writer append;
  append.PutVarint(4);
  append.PutSignedVarint(10);
  append.PutDouble(1.0);
  ASSERT_TRUE(WriteFully(fd->get(), legacy_frame(3, Opcode::kAppend, append)).ok());
  EXPECT_EQ(ReadResponseId(fd->get()), 3u);

  // And the modern Client agrees on what landed.
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  QuerySpec spec;
  spec.op = QueryOp::kCount;
  spec.t1 = 0;
  spec.t2 = 100;
  auto result = (*client)->Query(4, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->result.estimate, 1.0);
}

// The (session, seq) dedup contract: a replayed ingest seq is acked OK but
// applied exactly once — the replay after a lost ack cannot double-count.
TEST_F(NetServerTest, SessionReplayIsDeduplicated) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  auto server = Server::Start(store->get(), ServerOptions{});
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  Client& c = **client;
  ASSERT_TRUE(c.CreateStream(1, SmallConfig()).ok());

  Counter& dups = MetricRegistry::Default().GetCounter("ss_net_dup_suppressed_total");
  const uint64_t dups_before = dups.value();

  c.SetSession(0xABCD);
  ASSERT_TRUE(c.Append(1, 10, 1.0).ok());  // seq 1
  ASSERT_TRUE(c.Append(1, 20, 2.0).ok());  // seq 2

  // Replay seq 2 — as a reconnecting client would after losing the ack. Even
  // from a brand-new connection (the realistic shape), same session id.
  auto replayer = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(replayer.ok());
  (*replayer)->SetSession(0xABCD);
  (*replayer)->SetNextSeq(2);
  Status replay = (*replayer)->Append(1, 20, 2.0);
  EXPECT_TRUE(replay.ok()) << replay;  // dup is acked OK, not an error
  EXPECT_EQ(dups.value(), dups_before + 1);

  // A batch replay dedups too.
  std::vector<Event> batch = {{30, 3.0}, {31, 3.5}};
  ASSERT_TRUE(c.AppendBatch(1, batch).ok());  // seq 3
  (*replayer)->SetNextSeq(3);
  EXPECT_TRUE((*replayer)->AppendBatch(1, batch).ok());
  EXPECT_EQ(dups.value(), dups_before + 2);

  QuerySpec spec;
  spec.op = QueryOp::kCount;
  spec.t1 = 0;
  spec.t2 = 100;
  auto result = c.Query(1, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->result.estimate, 4.0) << "replayed ingest was double-applied";
}

// deadline_ms = 0 with the deadline flag set means "already expired": the
// server must answer kDeadlineExceeded without executing. (A real expiry is
// the same code path with a non-deterministic clock; 0 pins it.)
TEST_F(NetServerTest, ExpiredWireDeadlineIsRejectedTyped) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  auto server = Server::Start(store->get(), ServerOptions{});
  ASSERT_TRUE(server.ok());
  auto fd = ConnectTcp("127.0.0.1", (*server)->port());
  ASSERT_TRUE(fd.ok());

  Counter& expired = MetricRegistry::Default().GetCounter("ss_net_deadline_exceeded_total");
  const uint64_t expired_before = expired.value();

  RequestHeader header;
  header.request_id = 1;
  header.op = Opcode::kListStreams;
  header.has_deadline = true;
  header.deadline_ms = 0;
  Writer req;
  EncodeRequestHeader(header, req);
  std::string frame;
  ASSERT_TRUE(AppendFrame(req.data(), &frame).ok());
  ASSERT_TRUE(WriteFully(fd->get(), frame).ok());

  char prefix[4];
  ASSERT_TRUE(ReadFully(fd->get(), prefix, sizeof(prefix)).ok());
  uint32_t len = 0;
  std::memcpy(&len, prefix, sizeof(len));
  ASSERT_GT(len, 0u);
  ASSERT_LE(len, kMaxFrameBytes);
  std::string payload(len, '\0');
  ASSERT_TRUE(ReadFully(fd->get(), payload.data(), len).ok());
  Reader reader(payload);
  auto id = reader.ReadVarint();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1u);
  Status remote = Status::Ok();
  ASSERT_TRUE(DecodeStatus(reader, &remote).ok());
  EXPECT_EQ(remote.code(), StatusCode::kDeadlineExceeded) << remote;
  EXPECT_EQ(expired.value(), expired_before + 1);

  // A generous deadline sails through on the same connection.
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  ClientOptions generous;
  generous.deadline_ms = 60'000;
  auto client2 = Client::Connect("127.0.0.1", (*server)->port(), generous);
  ASSERT_TRUE(client2.ok());
  EXPECT_TRUE((*client2)->ListStreams().ok());
}

// Slow-peer defense: a client that stops reading while responses pile up
// past max_conn_buffer_bytes is disconnected after slow_peer_timeout_ms
// instead of pinning server memory forever.
TEST_F(NetServerTest, SlowPeerIsDisconnected) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  ServerOptions options;
  options.max_conn_buffer_bytes = 16 * 1024;
  options.slow_peer_timeout_ms = 200;
  auto server = Server::Start(store->get(), options);
  ASSERT_TRUE(server.ok());
  auto fd = ConnectTcp("127.0.0.1", (*server)->port());
  ASSERT_TRUE(fd.ok());

  Counter& disconnects =
      MetricRegistry::Default().GetCounter("ss_net_slow_peer_disconnects_total");
  const uint64_t before = disconnects.value();

  // Pipeline a pile of stats requests (multi-KB responses each) and never
  // read: kernel buffers fill (both sides can autotune to megabytes, hence
  // the request count), conn->out crosses the bound, the stall clock runs
  // out.
  std::string burst;
  for (uint64_t id = 1; id <= 8192; ++id) {
    Writer req;
    EncodeRequestHeader(RequestHeader{id, Opcode::kStats}, req);
    req.PutU8(1);  // prometheus text
    ASSERT_TRUE(AppendFrame(req.data(), &burst).ok());
  }
  ASSERT_TRUE(WriteFully(fd->get(), burst).ok());

  // The server must cut us loose within a few timeout periods.
  bool dropped = false;
  for (int i = 0; i < 100 && !dropped; ++i) {
    dropped = disconnects.value() > before;
    usleep(50 * 1000);
  }
  EXPECT_TRUE(dropped) << "slow peer was never disconnected";
  EXPECT_EQ((*server)->active_connections(), 0u);
}

// kPing doubles as a health probe: ok on a fresh server, draining after
// BeginDrain, and legacy empty-body responses decode as ok.
TEST_F(NetServerTest, HealthProbeReflectsDrain) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  auto server = Server::Start(store->get(), ServerOptions{});
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());

  auto health = (*client)->Health();
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(*health, ServerHealth::kOk);

  (*server)->BeginDrain();
  health = (*client)->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(*health, ServerHealth::kDraining);

  // Plain Ping still succeeds while draining — the probe is advisory.
  EXPECT_TRUE((*client)->Ping().ok());
}

}  // namespace
}  // namespace ss::net
