// End-to-end tests for the sserver service core: request routing, per-
// connection pipelining, shed/block backpressure, and the durable-ack
// guarantee under a hard server kill (acked appends must survive WAL replay).
#include <unistd.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/summary_store.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/obs/metrics.h"
#include "src/storage/file_util.h"

namespace ss::net {
namespace {

StreamConfig SmallConfig() {
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  return config;
}

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The pid keeps the dir unique across processes: ctest runs each test as
    // its own filtered process, so a process-local counter alone collides
    // when tests from this binary run concurrently (-j), and SetUp's cleanup
    // would wipe a sibling test's live store.
    static std::atomic<int> counter{0};
    dir_ = ::testing::TempDir() + "/ss_net_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1));
    (void)RemoveDirRecursive(dir_);  // stale store from a previous run
  }

  StatusOr<std::unique_ptr<SummaryStore>> OpenStore(bool sync_wal = false) {
    StoreOptions options;
    options.dir = dir_;
    options.lsm.sync_wal = sync_wal;
    return SummaryStore::Open(options);
  }

  std::string dir_;
};

TEST_F(NetServerTest, RoundtripAllOps) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok()) << store.status();
  auto server = Server::Start(store->get(), ServerOptions{});
  ASSERT_TRUE(server.ok()) << server.status();

  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status();
  Client& c = **client;

  ASSERT_TRUE(c.Ping().ok());

  auto sid = c.CreateStream(0, SmallConfig());
  ASSERT_TRUE(sid.ok()) << sid.status();
  EXPECT_EQ(*sid, 1u);
  auto sid2 = c.CreateStream(9, SmallConfig());
  ASSERT_TRUE(sid2.ok()) << sid2.status();
  EXPECT_EQ(*sid2, 9u);

  auto listed = c.ListStreams();
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), 2u);

  ASSERT_TRUE(c.Append(*sid, 10, 1.5).ok());
  std::vector<Event> batch;
  for (int i = 0; i < 100; ++i) {
    batch.push_back(Event{static_cast<Timestamp>(20 + i), static_cast<double>(i)});
  }
  ASSERT_TRUE(c.AppendBatch(*sid, batch).ok());

  QuerySpec spec;
  spec.op = QueryOp::kCount;
  spec.t1 = 0;
  spec.t2 = 1000;
  auto result = c.Query(*sid, spec);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(result->result.estimate, 101.0);
  EXPECT_TRUE(result->result.exact);

  // Remote explain ships the rendered trace text.
  spec.collect_trace = true;
  auto traced = c.Query(*sid, spec);
  ASSERT_TRUE(traced.ok());
  EXPECT_NE(traced->trace_text.find("query trace"), std::string::npos);

  spec.collect_trace = false;
  std::vector<StreamId> both = {*sid, *sid2};
  auto agg = c.QueryAggregate(both, spec);
  ASSERT_TRUE(agg.ok()) << agg.status();
  EXPECT_DOUBLE_EQ(agg->result.estimate, 101.0);

  ASSERT_TRUE(c.BeginLandmark(*sid2, 5).ok());
  ASSERT_TRUE(c.Append(*sid2, 6, 42.0).ok());
  ASSERT_TRUE(c.EndLandmark(*sid2, 7).ok());
  ASSERT_TRUE(c.Flush().ok());

  auto scrub = c.Scrub(/*repair=*/false);
  ASSERT_TRUE(scrub.ok()) << scrub.status();
  EXPECT_GT(scrub->windows_checked, 0u);
  EXPECT_EQ(scrub->errors, 0u);

  auto stats = c.Stats(/*prometheus=*/true);
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("ss_net_requests_total"), std::string::npos);

  auto infos = c.StreamInfos(0);
  ASSERT_TRUE(infos.ok());
  ASSERT_EQ(infos->size(), 2u);
  EXPECT_EQ((*infos)[0].id, *sid);
  EXPECT_EQ((*infos)[0].element_count, 101u);
  EXPECT_EQ((*infos)[1].landmark_window_count, 1u);

  // Errors come back as statuses, not closed connections.
  EXPECT_EQ(c.DeleteStream(777).code(), StatusCode::kNotFound);
  EXPECT_TRUE(c.Ping().ok());
  ASSERT_TRUE(c.DeleteStream(*sid2).ok());
}

TEST_F(NetServerTest, PipelinedAppendsAckOutOfOrderSafe) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  auto server = Server::Start(store->get(), ServerOptions{});
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  Client& c = **client;
  auto sid = c.CreateStream(0, SmallConfig());
  ASSERT_TRUE(sid.ok());

  constexpr int kAppends = 256;
  std::set<uint64_t> sent;
  for (int i = 0; i < kAppends; ++i) {
    auto id = c.SendAppend(*sid, i + 1, 1.0);
    ASSERT_TRUE(id.ok()) << id.status();
    sent.insert(*id);
  }
  EXPECT_EQ(c.inflight(), static_cast<size_t>(kAppends));
  std::set<uint64_t> acked;
  for (int i = 0; i < kAppends; ++i) {
    auto ack = c.ReceiveAck();
    ASSERT_TRUE(ack.ok()) << ack.status();
    EXPECT_TRUE(ack->status.ok()) << ack->status;
    EXPECT_TRUE(sent.contains(ack->request_id));
    acked.insert(ack->request_id);
  }
  EXPECT_EQ(acked, sent);  // every request acked exactly once
  EXPECT_EQ(c.inflight(), 0u);

  QuerySpec spec;
  spec.op = QueryOp::kCount;
  spec.t1 = 0;
  spec.t2 = kAppends + 1;
  auto result = c.Query(*sid, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->result.estimate, static_cast<double>(kAppends));

  // Graceful stop: the next read observes a clean close, not a hang.
  (*server)->Stop();
  EXPECT_FALSE(c.Ping().ok());
}

TEST_F(NetServerTest, ShedPolicyRejectsOversizedBacklog) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  ServerOptions options;
  options.backpressure = ServerOptions::Backpressure::kShed;
  options.ingest_queue_events = 8;
  auto server = Server::Start(store->get(), options);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  Client& c = **client;
  auto sid = c.CreateStream(0, SmallConfig());
  ASSERT_TRUE(sid.ok());

  Counter& shed = MetricRegistry::Default().GetCounter("ss_net_backpressure_shed_total");
  const uint64_t shed_before = shed.value();

  // One batch bigger than the whole admission budget: shed outright.
  std::vector<Event> big;
  for (int i = 0; i < 64; ++i) {
    big.push_back(Event{static_cast<Timestamp>(i + 1), 1.0});
  }
  Status s = c.AppendBatch(*sid, big);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << s;
  EXPECT_GT(shed.value(), shed_before);

  // The connection survives a shed and small batches still land.
  std::vector<Event> small = {Event{100, 1.0}, Event{101, 2.0}};
  EXPECT_TRUE(c.AppendBatch(*sid, small).ok());
}

TEST_F(NetServerTest, BlockPolicyThrottlesAndLosesNothing) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  ServerOptions options;
  options.backpressure = ServerOptions::Backpressure::kBlock;
  options.ingest_queue_events = 4;  // tiny budget: a pipelined storm must block
  auto server = Server::Start(store->get(), options);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  Client& c = **client;
  auto sid = c.CreateStream(0, SmallConfig());
  ASSERT_TRUE(sid.ok());

  Counter& blocked = MetricRegistry::Default().GetCounter("ss_net_backpressure_blocked_total");
  const uint64_t blocked_before = blocked.value();

  // All 300 tiny frames fit in the kernel socket buffers, so the sends
  // complete even while the server's reads are withheld (TCP backpressure);
  // Client is not thread-safe, so send first and drain the acks after.
  constexpr int kAppends = 300;
  for (int i = 0; i < kAppends; ++i) {
    auto id = c.SendAppend(*sid, i + 1, 1.0);
    ASSERT_TRUE(id.ok()) << id.status();
  }
  int acked = 0;
  for (int i = 0; i < kAppends; ++i) {
    auto ack = c.ReceiveAck();
    ASSERT_TRUE(ack.ok()) << ack.status();
    ASSERT_TRUE(ack->status.ok()) << ack->status;
    ++acked;
  }
  EXPECT_EQ(acked, kAppends);
  EXPECT_GT(blocked.value(), blocked_before);  // the budget actually engaged

  QuerySpec spec;
  spec.op = QueryOp::kCount;
  spec.t1 = 0;
  spec.t2 = kAppends + 1;
  auto result = c.Query(*sid, spec);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->result.estimate, static_cast<double>(kAppends));
}

TEST_F(NetServerTest, AckedAppendsSurviveHardKill) {
  constexpr int kAppends = 200;
  int acked = 0;
  {
    auto store = OpenStore(/*sync_wal=*/true);
    ASSERT_TRUE(store.ok());
    auto server = Server::Start(store->get(), ServerOptions{});
    ASSERT_TRUE(server.ok());
    auto client = Client::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    Client& c = **client;
    auto sid = c.CreateStream(3, SmallConfig());
    ASSERT_TRUE(sid.ok());

    for (int i = 0; i < kAppends; ++i) {
      ASSERT_TRUE(c.SendAppend(*sid, i + 1, 1.0).ok());
    }
    // Take roughly half the acks, then kill the server mid-stream.
    for (int i = 0; i < kAppends / 2; ++i) {
      auto ack = c.ReceiveAck();
      ASSERT_TRUE(ack.ok()) << ack.status();
      if (ack->status.ok()) {
        ++acked;
      }
    }
    (*server)->Abort();
    // Drain whatever raced out before the close; acks already on the wire
    // still count (the server flushed before sending them).
    for (;;) {
      auto ack = c.ReceiveAck();
      if (!ack.ok()) {
        break;  // reset/EOF: the kill
      }
      if (ack->status.ok()) {
        ++acked;
      }
    }
    // Hard kill: leak the store so no destructor flush makes recovery look
    // better than it is. WAL replay alone must cover every acked append.
    (void)store->release();
  }
  ASSERT_GT(acked, 0);

  auto reopened = OpenStore(/*sync_wal=*/true);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto stream = (*reopened)->GetStream(3);
  ASSERT_TRUE(stream.ok()) << stream.status();
  EXPECT_GE((*stream)->element_count(), static_cast<uint64_t>(acked))
      << "acked appends lost across kill+replay";
}

TEST_F(NetServerTest, ManyConnectionsConcurrently) {
  auto store = OpenStore();
  ASSERT_TRUE(store.ok());
  auto server = Server::Start(store->get(), ServerOptions{});
  ASSERT_TRUE(server.ok());

  // One stream per connection: appends from different connections interleave
  // arbitrarily, and a shared monotone stream would reject out-of-order ts.
  constexpr int kConns = 32;
  constexpr int kPerConn = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kConns; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect("127.0.0.1", (*server)->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      Client& c = **client;
      const StreamId sid = static_cast<StreamId>(t + 1);
      if (!c.CreateStream(sid, SmallConfig()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kPerConn; ++i) {
        if (!c.SendAppend(sid, i + 1, 1.0).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
      for (int i = 0; i < kPerConn; ++i) {
        auto ack = c.ReceiveAck();
        if (!ack.ok() || !ack->status.ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);

  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  std::vector<StreamId> all;
  for (int t = 0; t < kConns; ++t) {
    all.push_back(static_cast<StreamId>(t + 1));
  }
  QuerySpec spec;
  spec.op = QueryOp::kCount;
  spec.t1 = 0;
  spec.t2 = kPerConn + 1;
  auto result = (*client)->QueryAggregate(all, spec);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(result->result.estimate, static_cast<double>(kConns * kPerConn));
}

}  // namespace
}  // namespace ss::net
