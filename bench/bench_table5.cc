// Table 5: storage-compaction evolution for the decay-configuration family.
//
// The paper streams 16-byte tuples and reports compaction = (raw size) /
// (store size) at 10 GB, 100 GB and 1000 GB of raw data per configuration.
// Store size = (number of decayed windows) × (per-window bytes); the window
// count comes from the exact decay arithmetic (Table 4 / Appendix A), which
// this binary evaluates via DecaySequence::WindowCountFor — the same code
// the live ingest path uses for target-bucket boundaries. A live-ingest
// cross-check validates the analytic count on a small stream.
//
// The per-window byte cost is calibrated once (c = 28,284 B) so that
// PowerLaw(1,1,1,1) reproduces the paper's 10x/32x/100x column — every other
// row then follows from the decay math with no further freedom.
#include "bench/bench_util.h"
#include "src/storage/memory_backend.h"

namespace {

using namespace ss;
using namespace ss::bench;

constexpr double kWindowBytes = 28284.0;
constexpr double kTupleBytes = 16.0;

double CompactionFor(const DecaySequence& seq, double raw_gb) {
  double raw_bytes = raw_gb * (1 << 30);
  auto n = static_cast<uint64_t>(raw_bytes / kTupleBytes);
  double windows = static_cast<double>(seq.WindowCountFor(n));
  return raw_bytes / (windows * kWindowBytes);
}

void PrintRow(const std::string& name, const DecaySequence& seq) {
  std::printf("%-24s %9.1fx %9.1fx %9.1fx\n", name.c_str(), CompactionFor(seq, 10),
              CompactionFor(seq, 100), CompactionFor(seq, 1000));
}

}  // namespace

int main() {
  std::printf("=== Table 5: compaction vs decay configuration ===\n");
  std::printf("%-24s %10s %10s %10s   (raw stream size)\n", "decay", "10GB", "100GB", "1000GB");

  struct PowerRow {
    uint32_t p, q, r, s;
  };
  const PowerRow power_rows[] = {
      {1, 1, 88, 1}, {1, 1, 16, 1}, {1, 1, 8, 1}, {1, 1, 4, 1},
      {1, 1, 1, 1},  {1, 2, 48, 1}, {1, 2, 5, 1},
  };
  for (const auto& row : power_rows) {
    auto decay = std::make_shared<PowerLawDecay>(row.p, row.q, row.r, row.s);
    PrintRow(decay->Describe(), DecaySequence(decay));
  }
  struct ExpRow {
    double b;
    uint32_t r, s;
  };
  const ExpRow exp_rows[] = {{2, 88, 1}, {2, 32, 1}, {2, 1, 1}, {3, 1, 1}};
  for (const auto& row : exp_rows) {
    auto decay = std::make_shared<ExponentialDecay>(row.b, row.r, row.s);
    PrintRow(decay->Describe(), DecaySequence(decay));
  }

  // Live-ingest cross-check: the analytic window count must match a real
  // ingest through Algorithm 1 (within the transient tail of un-merged
  // windows at the stream head).
  std::printf("\nlive-ingest cross-check (PowerLaw(1,1,1,1), 1M elements):\n");
  MemoryBackend kv;
  auto decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  StreamConfig config;
  config.decay = decay;
  config.operators = OperatorSet::AggregatesOnly();
  config.raw_threshold = 8;
  Stream stream(1, config, &kv);
  uint64_t n = 1000000;
  for (uint64_t i = 1; i <= n; ++i) {
    (void)stream.Append(static_cast<Timestamp>(i), 1.0);
  }
  DecaySequence seq(decay);
  std::printf("  analytic windows: %llu, live windows: %zu (ratio %.2f)\n",
              static_cast<unsigned long long>(seq.WindowCountFor(n)), stream.window_count(),
              static_cast<double>(stream.window_count()) /
                  static_cast<double>(seq.WindowCountFor(n)));
  std::printf("\npaper row check: PowerLaw(1,1,1,1) = 10x / 32x / 100x; "
              "Exponential(2,1,1) ≈ 8600x / 77000x / 700000x.\n");
  return 0;
}
