// Ablation studies for the design choices DESIGN.md calls out:
//
//   A. Merge-candidate heap vs. the naive per-append adjacent-pair scan
//      (Algorithm 1 as literally written): ingest cost.
//   B. Raw-threshold materialization: ingest rate, store size, and recent-
//      query exactness across thresholds.
//   C. Bulk window loading (range scan) vs. per-window point gets on large
//      cold queries.
//   D. Block cache: cold vs. warm query latency on the LSM backend.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/exponential_histogram.h"
#include "src/workload/generators.h"

namespace {

using namespace ss;
using namespace ss::bench;

std::vector<Event> MakeEvents(uint64_t n, uint64_t seed = 77) {
  SyntheticStreamSpec spec;
  spec.arrival = ArrivalKind::kPoisson;
  spec.mean_interarrival = 16.0;
  spec.seed = seed;
  SyntheticStream gen(spec);
  std::vector<Event> events;
  events.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    events.push_back(gen.Next());
  }
  return events;
}

// A naive reference ingester: after every append, rescan all adjacent pairs
// and merge any pair fitting a single target bucket (no heap). Semantically
// identical to Stream's ingest; cost is O(W) per append.
class NaiveIngest {
 public:
  explicit NaiveIngest(std::shared_ptr<const DecayFunction> decay) : seq_(std::move(decay)) {}

  void Append() {
    ++n_;
    windows_.push_back({n_, n_});
    bool merged = true;
    while (merged) {
      merged = false;
      for (size_t i = 0; i + 1 < windows_.size(); ++i) {
        uint64_t len = windows_[i + 1].second - windows_[i].first + 1;
        uint64_t k = seq_.FirstBucketWithLengthAtLeast(len);
        if (k == DecaySequence::kNoBucket) {
          continue;
        }
        // Same containment rule as Stream::ComputeMergeAt, evaluated at N.
        uint64_t age_hi = n_ - windows_[i + 1].second;
        uint64_t age_lo = n_ - windows_[i].first;
        // Find the bucket containing age_hi.
        uint64_t m = seq_.FirstBoundaryGreaterThan(age_hi);
        uint64_t bucket = m - 1;
        if (bucket >= k && age_lo < seq_.BucketBoundary(bucket + 1) &&
            age_hi >= seq_.BucketBoundary(bucket)) {
          windows_[i].second = windows_[i + 1].second;
          windows_.erase(windows_.begin() + static_cast<long>(i) + 1);
          merged = true;
          break;
        }
      }
    }
  }

  size_t window_count() const { return windows_.size(); }

 private:
  DecaySequence seq_;
  uint64_t n_ = 0;
  std::vector<std::pair<uint64_t, uint64_t>> windows_;  // [cs, ce]
};

void AblationMergeHeap() {
  std::printf("--- A. merge-candidate heap vs naive adjacent-pair scan ---\n");
  std::printf("%10s %18s %18s %10s\n", "events", "heap (appends/s)", "naive (appends/s)",
              "speedup");
  for (uint64_t n : {20000ULL, 60000ULL, 180000ULL}) {
    auto decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
    double heap_rate;
    {
      MemoryBackend kv;
      StreamConfig config;
      config.decay = decay;
      config.operators = OperatorSet::AggregatesOnly();
      config.raw_threshold = 8;
      Stream stream(1, config, &kv);
      Stopwatch timer;
      for (uint64_t i = 1; i <= n; ++i) {
        (void)stream.Append(static_cast<Timestamp>(i), 1.0);
      }
      heap_rate = static_cast<double>(n) / timer.ElapsedSeconds();
    }
    double naive_rate;
    {
      NaiveIngest naive(decay);
      Stopwatch timer;
      for (uint64_t i = 1; i <= n; ++i) {
        naive.Append();
      }
      naive_rate = static_cast<double>(n) / timer.ElapsedSeconds();
    }
    std::printf("%10llu %18.0f %18.0f %9.1fx\n", static_cast<unsigned long long>(n), heap_rate,
                naive_rate, heap_rate / naive_rate);
  }
  std::printf("(the naive scanner does no sketch work at all, yet the heap ingester — doing "
              "full summary maintenance — pulls ahead as W grows)\n\n");
}

void AblationRawThreshold() {
  std::printf("--- B. raw-threshold materialization ---\n");
  std::printf("%10s %16s %14s %22s\n", "threshold", "appends/s", "store MB",
              "recent-50 query exact?");
  std::vector<Event> events = MakeEvents(500000);
  for (uint64_t threshold : {0ULL, 8ULL, 32ULL, 128ULL, 512ULL}) {
    auto store = SummaryStore::Open(StoreOptions{});
    StreamConfig config;
    config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
    config.operators = OperatorSet::Microbench();
    config.operators.cms_width = 256;
    config.raw_threshold = threshold;
    StreamId sid = *(*store)->CreateStream(std::move(config));
    Stopwatch timer;
    for (const Event& e : events) {
      (void)(*store)->Append(sid, e.ts, e.value);
    }
    double rate = static_cast<double>(events.size()) / timer.ElapsedSeconds();
    Timestamp now = events.back().ts;
    QuerySpec spec{.t1 = now - 800, .t2 = now, .op = QueryOp::kCount};  // ~50 recent events
    auto result = (*store)->Query(sid, spec);
    std::printf("%10llu %16.0f %14.1f %22s\n", static_cast<unsigned long long>(threshold), rate,
                (*store)->TotalSizeBytes() / 1e6,
                result.ok() && result->exact ? "yes" : "no");
  }
  std::printf("\n");
}

void AblationBulkLoadAndCache() {
  std::printf("--- C/D. bulk window loading and block cache (cold large query) ---\n");
  ScopedTempDir dir("ablation_bulk");
  StoreOptions options;
  options.dir = dir.path();
  auto store = SummaryStore::Open(options);
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 8, 1);  // many windows
  config.operators = OperatorSet::AggregatesOnly();
  config.raw_threshold = 4;
  StreamId sid = *(*store)->CreateStream(std::move(config));
  std::vector<Event> events = MakeEvents(1000000);
  for (const Event& e : events) {
    (void)(*store)->Append(sid, e.ts, e.value);
  }
  (void)(*store)->EvictAll();
  QuerySpec spec{.t1 = events.front().ts, .t2 = events.back().ts, .op = QueryOp::kCount};

  auto timed_query = [&] {
    Stopwatch timer;
    auto result = (*store)->Query(sid, spec);
    (void)result;
    return timer.ElapsedMillis();
  };
  (*store)->DropCaches();
  double cold_bulk = timed_query();
  double warm = timed_query();  // windows now resident in memory
  std::printf("full-scan count over %zu windows: cold (bulk range load) %.1f ms, warm "
              "(resident) %.1f ms\n",
              (*store)->GetStream(sid).value()->window_count(), cold_bulk, warm);
  std::printf("(point-get loading of the same working set costs one block decode per window; "
              "the bulk path decodes each storage block once — see stream.cc "
              "BulkLoadWindows)\n");
}

void AblationExponentialHistogram() {
  std::printf("\n--- E. related work: Exponential Histogram (Datar et al.) vs SummaryStore ---\n");
  // Same Poisson stream into (a) an EH sized for a one-day sliding window
  // and (b) a SummaryStore stream with power-law decay. EH is tiny and
  // accurate for the one query it supports (the trailing-window count);
  // SummaryStore pays more bytes to answer *arbitrary* historical ranges.
  std::vector<Event> events = MakeEvents(1000000, 99);
  Timestamp now = events.back().ts;
  Timestamp day = 86400;

  ExponentialHistogram eh(day, 16);
  Oracle oracle;
  auto store = SummaryStore::Open(StoreOptions{});
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  config.operators = OperatorSet::AggregatesOnly();
  config.arrival_model = ArrivalModel::kPoisson;
  config.raw_threshold = 8;
  StreamId sid = *(*store)->CreateStream(std::move(config));
  for (const Event& e : events) {
    eh.Add(e.ts);
    oracle.Add(e);
    (void)(*store)->Append(sid, e.ts, e.value);
  }

  double truth_recent = oracle.Count(now - day + 1, now);
  double eh_est = eh.EstimateCount(now);
  QuerySpec recent{.t1 = now - day + 1, .t2 = now, .op = QueryOp::kCount};
  auto ss_recent = (*store)->Query(sid, recent);
  // An arbitrary historical day, eleven months back — outside EH's universe.
  QuerySpec old_day{.t1 = now - 330 * day, .t2 = now - 329 * day, .op = QueryOp::kCount};
  auto ss_old = (*store)->Query(sid, old_day);
  double truth_old = oracle.Count(old_day.t1, old_day.t2);

  std::printf("%-26s %12s %22s %26s\n", "structure", "bytes", "1-day suffix count err",
              "11-month-old day count err");
  std::printf("%-26s %12zu %21.2f%% %26s\n", "ExponentialHistogram(k=16)", eh.SizeBytes(),
              100.0 * RelativeError(eh_est, truth_recent), "(unanswerable)");
  std::printf("%-26s %12llu %21.2f%% %25.2f%%\n", "SummaryStore PL(1,1,1,1)",
              static_cast<unsigned long long>((*store)->TotalSizeBytes()),
              100.0 * RelativeError(ss_recent.ok() ? ss_recent->estimate : 0, truth_recent),
              100.0 * RelativeError(ss_old.ok() ? ss_old->estimate : 0, truth_old));
  std::printf("(EH supports only the trailing window — the paper's §8.4 point: its windowing "
              "is the most aggressive member of the decay family SummaryStore generalizes)\n");
}

}  // namespace

int main() {
  std::printf("=== Ablations: ingest and read-path design choices ===\n\n");
  AblationMergeHeap();
  AblationRawThreshold();
  AblationBulkLoadAndCache();
  AblationExponentialHistogram();
  return 0;
}
