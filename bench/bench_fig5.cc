// Figure 5: forecasting accuracy (Facebook-Prophet-style engine) vs storage
// compaction, for three SummaryStore configurations holding the training
// data — Uniform sampling (no decay), Exponential decay, PowerLaw decay —
// on the Econ / Wiki / NOAA dataset stand-ins.
//
// y in the paper: median % increase in forecast error relative to training
// on the full raw data; x: storage compaction. Expected shape: power-law
// beats exponential everywhere (by a wide margin on Wiki/NOAA), beats
// uniform on Econ/Wiki, and roughly ties uniform on the highly regular NOAA;
// on Econ, decay can *improve* on the baseline by forgetting old outliers.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analytics/forecaster.h"
#include "src/analytics/reconstruct.h"
#include "src/workload/generators.h"

namespace {

using namespace ss;
using namespace ss::bench;

constexpr int kDays = 4000;
constexpr int kSeeds = 9;
constexpr Timestamp kDaySecs = 86400;

double ForecastSmape(std::span<const Event> train, std::span<const Event> test) {
  ForecasterOptions options;
  options.seasonal_periods = {7.0 * kDaySecs, 365.25 * kDaySecs};
  auto model = Forecaster::Fit(train, options);
  if (!model.ok()) {
    return -1.0;
  }
  std::vector<double> actual;
  std::vector<double> predicted;
  for (const Event& e : test) {
    actual.push_back(e.value);
    predicted.push_back(model->Predict(e.ts));
  }
  return Smape(actual, predicted);
}

struct StoreKind {
  const char* name;
  std::vector<std::shared_ptr<const DecayFunction>> configs;  // increasing compaction
};

}  // namespace

int main() {
  std::printf("=== Figure 5: forecast-error increase vs compaction ===\n");
  std::printf("(median over %d series per dataset; negative %% = decay beats full data)\n\n",
              kSeeds);

  StoreKind kinds[] = {
      {"Uniform",
       {std::make_shared<UniformDecay>(8), std::make_shared<UniformDecay>(20),
        std::make_shared<UniformDecay>(60), std::make_shared<UniformDecay>(160),
        std::make_shared<UniformDecay>(400)}},
      {"Exponential",
       {std::make_shared<ExponentialDecay>(2.0, 64, 1), std::make_shared<ExponentialDecay>(2.0, 24, 1),
        std::make_shared<ExponentialDecay>(2.0, 8, 1), std::make_shared<ExponentialDecay>(2.0, 3, 1),
        std::make_shared<ExponentialDecay>(2.0, 1, 1)}},
      {"PowerLaw",
       {std::make_shared<PowerLawDecay>(1, 1, 24, 1), std::make_shared<PowerLawDecay>(1, 1, 6, 1),
        std::make_shared<PowerLawDecay>(1, 2, 24, 1), std::make_shared<PowerLawDecay>(1, 2, 6, 1),
        std::make_shared<PowerLawDecay>(1, 3, 8, 1), std::make_shared<PowerLawDecay>(1, 3, 1, 1),
        std::make_shared<PowerLawDecay>(1, 4, 1, 1)}},
  };

  for (ForecastDataset dataset :
       {ForecastDataset::kEcon, ForecastDataset::kWiki, ForecastDataset::kNoaa}) {
    std::printf("--- %s ---\n", ForecastDatasetName(dataset));
    std::printf("%-13s %12s %14s %16s\n", "store", "compaction", "median SMAPE",
                "err increase");

    // Per-seed baselines on the full training data.
    std::vector<std::vector<Event>> trains(kSeeds);
    std::vector<std::vector<Event>> tests(kSeeds);
    std::vector<double> baselines(kSeeds);
    for (int seed = 0; seed < kSeeds; ++seed) {
      auto series = GenerateForecastSeries(dataset, kDays, 1000 + static_cast<uint64_t>(seed));
      size_t split = series.size() * 9 / 10;
      trains[seed].assign(series.begin(), series.begin() + static_cast<long>(split));
      tests[seed].assign(series.begin() + static_cast<long>(split), series.end());
      baselines[seed] = ForecastSmape(trains[seed], tests[seed]);
    }
    {
      std::vector<double> base_copy = baselines;
      std::printf("%-13s %12s %13.2f%% %16s\n", "full (1x)", "1.0x",
                  Percentile(base_copy, 50) * 100, "baseline");
    }

    for (const StoreKind& kind : kinds) {
      for (const auto& decay : kind.configs) {
        std::vector<double> increases;
        std::vector<double> smapes;
        double compaction_acc = 0;
        for (int seed = 0; seed < kSeeds; ++seed) {
          auto store = SummaryStore::Open(StoreOptions{});
          StreamConfig config;
          config.decay = decay;
          config.operators = OperatorSet::AggregatesOnly();
          config.operators.reservoir = true;
          config.operators.reservoir_capacity = 4;
          config.raw_threshold = 4;
          config.seed = 7 + static_cast<uint64_t>(seed);
          StreamId sid = *(*store)->CreateStream(std::move(config));
          for (const Event& e : trains[seed]) {
            (void)(*store)->Append(sid, e.ts, e.value);
          }
          auto* stream = (*store)->GetStream(sid).value();
          auto samples = ReconstructSamples(*stream, 0, trains[seed].back().ts);
          if (!samples.ok() || samples->size() < 8) {
            continue;
          }
          compaction_acc += static_cast<double>(trains[seed].size()) /
                            static_cast<double>(samples->size());
          double smape = ForecastSmape(*samples, tests[seed]);
          smapes.push_back(smape);
          increases.push_back((smape - baselines[seed]) / baselines[seed] * 100.0);
        }
        if (increases.empty()) {
          continue;
        }
        std::printf("%-13s %11.1fx %13.2f%% %+15.1f%%\n", kind.name,
                    compaction_acc / kSeeds, Percentile(smapes, 50) * 100,
                    Percentile(increases, 50));
      }
    }
    std::printf("\n");
  }
  std::printf("shape check vs paper: PowerLaw <= Uniform on econ/wiki, PowerLaw << Exponential "
              "on wiki/noaa, Uniform ~ PowerLaw on noaa.\n");
  return 0;
}
