// Figure 12: profile of sub-window answers and error estimates as the query
// length t sweeps from 0 to the full window length T.
//
//   Count: empirical error and CI width peak mid-window and vanish at both
//          edges — the elliptical sqrt(f(1-f)) profile of §5.
//   Bloom: no such symmetry; the false-positive probability for *absent*
//          values falls with overlap, asymptoting to the filter's inherent
//          FP rate at full overlap, and the miss probability for *present*
//          values falls as overlap grows.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/generators.h"

namespace {

using namespace ss;
using namespace ss::bench;

constexpr uint64_t kWindowElements = 40000;
constexpr int kStreams = 12;  // independent streams per sweep point

}  // namespace

int main() {
  std::printf("=== Figure 12: sub-window answers and error estimates ===\n");
  std::printf("single summarized window, Poisson arrivals, count + membership sweeps\n\n");
  std::printf("%6s %14s %14s %17s %17s\n", "t/T", "count |err|", "count CI",
              "bloomFP(win-sem)", "engine miss(pres)");

  for (int step = 1; step <= 19; ++step) {
    double frac = step / 20.0;
    double count_err_acc = 0;
    double count_ci_acc = 0;
    int count_n = 0;
    int fp = 0;
    int fp_trials = 0;
    int miss = 0;
    int miss_trials = 0;

    for (int s = 0; s < kStreams; ++s) {
      auto store = SummaryStore::Open(StoreOptions{});
      StreamConfig config;
      // One giant target window: everything merges into a single summary.
      config.decay = std::make_shared<UniformDecay>(kWindowElements * 2);
      config.operators = OperatorSet::Microbench();
      // Size the Bloom filter for this window's ~34k distinct values
      // (fill ~15%, inherent FP ~0.01%); the saturation regime is Figure
      // 9/10's subject, not this one's.
      config.operators.bloom_bits = 1 << 20;
      config.arrival_model = ArrivalModel::kPoisson;
      config.raw_threshold = 0;
      config.seed = 100 + static_cast<uint64_t>(s);
      StreamId sid = *(*store)->CreateStream(std::move(config));

      SyntheticStreamSpec spec;
      spec.arrival = ArrivalKind::kPoisson;
      spec.mean_interarrival = 4.0;
      spec.value_universe = 100000;  // sparse values: membership is selective
      spec.seed = 200 + static_cast<uint64_t>(s);
      SyntheticStream gen(spec);
      Oracle oracle;
      std::vector<Event> events;
      events.reserve(kWindowElements);
      for (uint64_t i = 0; i < kWindowElements; ++i) {
        Event e = gen.Next();
        oracle.Add(e);
        events.push_back(e);
        (void)(*store)->Append(sid, e.ts, e.value);
      }
      Timestamp t_start = oracle.first_ts();
      Timestamp t_total = oracle.last_ts() - t_start;
      Timestamp t2 = t_start + static_cast<Timestamp>(frac * static_cast<double>(t_total));

      // Count sweep: query [start, start + f·T].
      QuerySpec count_spec{.t1 = t_start, .t2 = t2, .op = QueryOp::kCount};
      auto count = (*store)->Query(sid, count_spec);
      if (count.ok()) {
        count_err_acc += std::abs(count->estimate - oracle.Count(t_start, t2));
        count_ci_acc += count->CiWidth();
        ++count_n;
      }

      // Bloom sweep, with the paper's response semantics: "the response
      // remains the same as the full window" (§5.1), so a window-positive
      // value is answered true for any sub-range. The false-positive rate of
      // that answer — probing values present somewhere in the window — is
      // the fraction that actually misses the sub-range, 1-(1-f)^V, falling
      // toward the filter's inherent rate as overlap grows. The engine's
      // probability estimate P(v in sub-range) should track the hit rate.
      Rng rng(300 + static_cast<uint64_t>(s));
      for (int probe = 0; probe < 60; ++probe) {
        const Event& target = events[rng.NextBounded(kWindowElements)];
        bool truly_in_range = oracle.Exists(target.value, t_start, t2);
        QuerySpec bloom_spec{.t1 = t_start, .t2 = t2, .op = QueryOp::kExistence,
                             .value = target.value};
        auto result = (*store)->Query(sid, bloom_spec);
        if (!result.ok()) {
          continue;
        }
        // Window-level answer is "true"; count it wrong if the value misses
        // the queried sub-range.
        fp += truly_in_range ? 0 : 1;
        ++fp_trials;
        // Engine estimate accuracy for the same probes.
        miss += truly_in_range ? (result->bool_answer ? 0 : 1) : 0;
        miss_trials += truly_in_range ? 1 : 0;
      }
    }

    std::printf("%6.2f %14.2f %14.2f %17.3f %17.3f\n", frac, count_err_acc / count_n,
                count_ci_acc / count_n,
                fp_trials > 0 ? static_cast<double>(fp) / fp_trials : 0.0,
                miss_trials > 0 ? static_cast<double>(miss) / miss_trials : 0.0);
  }
  std::printf("\nshape check vs paper: count error/CI are elliptical (max near t/T=0.5, ~0 at "
              "the edges); bloom FP falls with overlap toward the filter's inherent rate.\n");
  return 0;
}
