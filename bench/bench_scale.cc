// §7.2 "colossal" structure test: many streams in one durable store,
// ingested in batches of 8 streams (the paper's memory-management strategy
// for its 1024 × 1 TB run), then queried across the fleet.
//
// Scale substitution: 32 streams × 500k events ≈ 16M events total (the
// paper: 1024 × 62.5e9). Reported: aggregate ingest rate, total logical and
// on-disk size, per-stream and fleet-aggregate query latency + accuracy.
#include <cstdio>
#include <cstdlib>

#include <atomic>
#include <barrier>
#include <thread>

#include "bench/bench_util.h"
#include "src/core/ingest_ring.h"
#include "src/workload/generators.h"

namespace {

using namespace ss;
using namespace ss::bench;

// Full-run defaults; SS_SCALE_STREAMS / SS_SCALE_EVENTS shrink the run for
// CI (tools/ci.sh uses 8 x 50000 so the perf-trajectory leg stays fast).
uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return std::strtoull(v, nullptr, 10);
}

}  // namespace

int main() {
  const int kStreams = static_cast<int>(EnvU64("SS_SCALE_STREAMS", 32));
  const uint64_t kEventsPerStream = EnvU64("SS_SCALE_EVENTS", 500000);
  // Streams ingested concurrently (paper's memory-management batching); must
  // divide the stream count evenly.
  const int kBatch = (kStreams % 8 == 0) ? 8 : 1;
  std::printf("=== scale: %d streams x %llu events, batched %d at a time ===\n", kStreams,
              static_cast<unsigned long long>(kEventsPerStream), kBatch);
  ScopedTempDir dir("scale");
  StoreOptions options;
  options.dir = dir.path();
  options.lsm.block_cache_bytes = 64 << 20;
  auto store = SummaryStore::Open(options);
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
    return 1;
  }

  std::vector<StreamId> ids;
  for (int s = 0; s < kStreams; ++s) {
    StreamConfig config;
    config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
    config.operators = OperatorSet::AggregatesOnly();
    config.arrival_model = ArrivalModel::kPoisson;
    config.raw_threshold = 16;
    config.seed = 7000 + static_cast<uint64_t>(s);
    ids.push_back(*(*store)->CreateStream(std::move(config)));
  }

  Stopwatch total_timer;
  Timestamp horizon = 0;
  for (int batch_start = 0; batch_start < kStreams; batch_start += kBatch) {
    // Round-robin within the batch, mimicking interleaved ingest; after the
    // batch completes, evict its windows so the working set stays bounded.
    std::vector<std::unique_ptr<SyntheticStream>> gens;
    for (int s = batch_start; s < batch_start + kBatch; ++s) {
      SyntheticStreamSpec spec;
      spec.arrival = ArrivalKind::kPoisson;
      spec.mean_interarrival = 63.0;  // ~500k events per synthetic year
      spec.seed = 7000 + static_cast<uint64_t>(s);
      gens.push_back(std::make_unique<SyntheticStream>(spec));
    }
    for (uint64_t i = 0; i < kEventsPerStream; ++i) {
      for (int j = 0; j < kBatch; ++j) {
        Event e = gens[static_cast<size_t>(j)]->Next();
        horizon = std::max(horizon, e.ts);
        if (auto s = (*store)->Append(ids[static_cast<size_t>(batch_start + j)], e.ts, e.value);
            !s.ok()) {
          std::fprintf(stderr, "append failed: %s\n", s.ToString().c_str());
          return 1;
        }
      }
    }
    for (int s = batch_start; s < batch_start + kBatch; ++s) {
      auto stream = (*store)->GetStream(ids[static_cast<size_t>(s)]);
      if (auto status = (*stream)->EvictAllWindows(); !status.ok()) {
        std::fprintf(stderr, "evict failed: %s\n", status.ToString().c_str());
        return 1;
      }
    }
    std::printf("  batch %d..%d done (%.0fs elapsed)\n", batch_start, batch_start + kBatch - 1,
                total_timer.ElapsedSeconds());
  }
  double ingest_secs = total_timer.ElapsedSeconds();
  uint64_t total_events = static_cast<uint64_t>(kStreams) * kEventsPerStream;
  const double ingest_rate = static_cast<double>(total_events) / ingest_secs;
  const double logical_mb = (*store)->TotalSizeBytes() / 1e6;
  const double disk_mb = static_cast<double>((*store)->backend().ApproximateSizeBytes()) / 1e6;
  const double compaction_x = total_events * 16.0 / static_cast<double>((*store)->TotalSizeBytes());
  std::printf("\ningest: %.1fs total, %.0f appends/sec aggregate\n", ingest_secs, ingest_rate);
  std::printf("raw %.1f MB -> logical %.1f MB (%.0fx), on-disk %.1f MB\n",
              total_events * 16.0 / 1e6, logical_mb, compaction_x, disk_mb);

  // Cold-cache random-stream count queries (the Fig 7b methodology, but
  // routed across the whole fleet).
  Rng rng(8);
  std::vector<double> latencies;
  double worst_err = 0;
  for (int q = 0; q < 200; ++q) {
    StreamId sid = ids[rng.NextBounded(kStreams)];
    Timestamp t1;
    Timestamp t2;
    if (!SampleQueryRange(rng, horizon, 0, static_cast<int>(rng.NextBounded(4)),
                          static_cast<int>(rng.NextBounded(4)), &t1, &t2)) {
      continue;
    }
    (*store)->DropCaches();
    QuerySpec spec{.t1 = t1, .t2 = t2, .op = QueryOp::kCount};
    Stopwatch timer;
    auto result = (*store)->Query(sid, spec);
    if (result.ok()) {
      latencies.push_back(timer.ElapsedMillis());
    }
  }
  std::printf("\ncold-cache fleet queries: median %.2f ms, p95 %.2f ms, max %.2f ms\n",
              Percentile(latencies, 50), Percentile(latencies, 95), Percentile(latencies, 100));

  // Fleet aggregate: total event count across all streams, one call.
  QuerySpec fleet{.t1 = 0, .t2 = horizon, .op = QueryOp::kCount};
  Stopwatch fleet_timer;
  auto total = (*store)->QueryAggregate(ids, fleet);
  double fleet_ms = 0;
  if (total.ok()) {
    fleet_ms = fleet_timer.ElapsedMillis();
    worst_err = RelativeError(total->estimate, static_cast<double>(total_events));
    std::printf("fleet-wide count: %.0f (truth %llu, err %.4f%%) in %.1f ms\n", total->estimate,
                static_cast<unsigned long long>(total_events), worst_err * 100, fleet_ms);
  }
  std::printf("\nshape check vs paper: batched ingest keeps the working set bounded; "
              "latencies stay low and stable at fleet scale.\n");

  // ---- striped ingest front: multi-producer append scaling --------------
  // P producer threads push through per-core SPSC rings into one stream (one
  // merge worker owns all window mutation); shared-clock timestamps with
  // reorder slack sized to the total ring capacity. Compare P=1 vs P=2/4 for
  // the scaling curve; rates are events/s end-to-end including the drain.
  const uint64_t kRingEvents = EnvU64("SS_SCALE_RING_EVENTS", 1000000);
  std::vector<std::pair<int, double>> ring_rates;
  for (int producers : {1, 2, 4}) {
    auto ring_store = SummaryStore::Open(StoreOptions{});
    if (!ring_store.ok()) {
      std::fprintf(stderr, "ring store open failed: %s\n",
                   ring_store.status().ToString().c_str());
      return 1;
    }
    StreamConfig config;
    config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
    config.operators = OperatorSet::AggregatesOnly();
    config.raw_threshold = 16;
    config.reorder_buffer = 1 << 16;
    StreamId ring_sid = *(*ring_store)->CreateStream(std::move(config));
    IngestRingOptions ring_options;
    ring_options.ring_capacity = 8192;
    IngestFront front(**ring_store, ring_sid, ring_options);
    std::vector<IngestFront::Producer*> handles;
    for (int p = 0; p < producers; ++p) {
      handles.push_back(front.RegisterProducer());
    }
    std::atomic<Timestamp> clock{0};
    const uint64_t per_producer = kRingEvents / producers;
    // A producer descheduled between grabbing a clock stamp and pushing it
    // can otherwise be overtaken by an unbounded number of newer stamps
    // (observed on 1-core CI runners); re-syncing every 4096 events caps the
    // overtake at (P-1)*4096 stamps, far inside the reorder slack.
    std::barrier sync(producers);
    Stopwatch ring_timer;
    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        for (uint64_t i = 0; i < per_producer; ++i) {
          if (i != 0 && i % 4096 == 0) {
            sync.arrive_and_wait();
          }
          Timestamp ts = clock.fetch_add(1, std::memory_order_relaxed) + 1;
          (void)handles[static_cast<size_t>(p)]->Offer(ts, static_cast<double>(i % 11));
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    if (auto s = front.Drain(); !s.ok()) {
      std::fprintf(stderr, "ring drain failed: %s\n", s.ToString().c_str());
      return 1;
    }
    front.Stop();
    const double rate = per_producer * producers / ring_timer.ElapsedSeconds();
    ring_rates.emplace_back(producers, rate);
    std::printf("ingest ring: %d producer(s), %.0f appends/sec\n", producers, rate);
  }

  const char* profile_env = std::getenv("SS_BENCH_PROFILE");
  BenchReport report("scale");
  report.AddMeta("profile", profile_env != nullptr ? profile_env : "default");
  report.AddMeta("streams", std::to_string(kStreams));
  report.AddMeta("events_per_stream", std::to_string(kEventsPerStream));
  report.Add("ingest_appends_per_sec", ingest_rate, "appends/s", "higher");
  report.Add("logical_size_mb", logical_mb, "MB", "lower");
  report.Add("on_disk_size_mb", disk_mb, "MB", "lower");
  report.Add("compaction_ratio", compaction_x, "x", "higher");
  report.Add("cold_query_p50_ms", Percentile(latencies, 50), "ms", "lower");
  report.Add("cold_query_p95_ms", Percentile(latencies, 95), "ms", "lower");
  report.Add("fleet_count_err_pct", worst_err * 100, "pct", "lower");
  report.Add("fleet_query_ms", fleet_ms, "ms", "lower");
  for (const auto& [producers, rate] : ring_rates) {
    report.Add("ring_ingest_p" + std::to_string(producers) + "_appends_per_sec", rate,
               "appends/s", "higher");
  }
  const char* out = std::getenv("SS_BENCH_OUT");
  std::string report_path = out != nullptr ? out : "BENCH_scale.json";
  if (report.WriteFile(report_path)) {
    std::printf("bench report written to %s\n", report_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write bench report to %s\n", report_path.c_str());
    return 1;
  }
  return 0;
}
