// §7.2 "colossal" structure test: many streams in one durable store,
// ingested in batches of 8 streams (the paper's memory-management strategy
// for its 1024 × 1 TB run), then queried across the fleet.
//
// Scale substitution: 32 streams × 500k events ≈ 16M events total (the
// paper: 1024 × 62.5e9). Reported: aggregate ingest rate, total logical and
// on-disk size, per-stream and fleet-aggregate query latency + accuracy.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/generators.h"

namespace {

using namespace ss;
using namespace ss::bench;

constexpr int kStreams = 32;
constexpr int kBatch = 8;  // streams ingested concurrently (paper's batching)
constexpr uint64_t kEventsPerStream = 500000;

}  // namespace

int main() {
  std::printf("=== scale: %d streams x %llu events, batched %d at a time ===\n", kStreams,
              static_cast<unsigned long long>(kEventsPerStream), kBatch);
  ScopedTempDir dir("scale");
  StoreOptions options;
  options.dir = dir.path();
  options.lsm.block_cache_bytes = 64 << 20;
  auto store = SummaryStore::Open(options);
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
    return 1;
  }

  std::vector<StreamId> ids;
  for (int s = 0; s < kStreams; ++s) {
    StreamConfig config;
    config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
    config.operators = OperatorSet::AggregatesOnly();
    config.arrival_model = ArrivalModel::kPoisson;
    config.raw_threshold = 16;
    config.seed = 7000 + static_cast<uint64_t>(s);
    ids.push_back(*(*store)->CreateStream(std::move(config)));
  }

  Stopwatch total_timer;
  Timestamp horizon = 0;
  for (int batch_start = 0; batch_start < kStreams; batch_start += kBatch) {
    // Round-robin within the batch, mimicking interleaved ingest; after the
    // batch completes, evict its windows so the working set stays bounded.
    std::vector<std::unique_ptr<SyntheticStream>> gens;
    for (int s = batch_start; s < batch_start + kBatch; ++s) {
      SyntheticStreamSpec spec;
      spec.arrival = ArrivalKind::kPoisson;
      spec.mean_interarrival = 63.0;  // ~500k events per synthetic year
      spec.seed = 7000 + static_cast<uint64_t>(s);
      gens.push_back(std::make_unique<SyntheticStream>(spec));
    }
    for (uint64_t i = 0; i < kEventsPerStream; ++i) {
      for (int j = 0; j < kBatch; ++j) {
        Event e = gens[static_cast<size_t>(j)]->Next();
        horizon = std::max(horizon, e.ts);
        if (auto s = (*store)->Append(ids[static_cast<size_t>(batch_start + j)], e.ts, e.value);
            !s.ok()) {
          std::fprintf(stderr, "append failed: %s\n", s.ToString().c_str());
          return 1;
        }
      }
    }
    for (int s = batch_start; s < batch_start + kBatch; ++s) {
      auto stream = (*store)->GetStream(ids[static_cast<size_t>(s)]);
      if (auto status = (*stream)->EvictAllWindows(); !status.ok()) {
        std::fprintf(stderr, "evict failed: %s\n", status.ToString().c_str());
        return 1;
      }
    }
    std::printf("  batch %d..%d done (%.0fs elapsed)\n", batch_start, batch_start + kBatch - 1,
                total_timer.ElapsedSeconds());
  }
  double ingest_secs = total_timer.ElapsedSeconds();
  uint64_t total_events = static_cast<uint64_t>(kStreams) * kEventsPerStream;
  std::printf("\ningest: %.1fs total, %.0f appends/sec aggregate\n", ingest_secs,
              static_cast<double>(total_events) / ingest_secs);
  std::printf("raw %.1f MB -> logical %.1f MB (%.0fx), on-disk %.1f MB\n",
              total_events * 16.0 / 1e6, (*store)->TotalSizeBytes() / 1e6,
              total_events * 16.0 / static_cast<double>((*store)->TotalSizeBytes()),
              static_cast<double>((*store)->backend().ApproximateSizeBytes()) / 1e6);

  // Cold-cache random-stream count queries (the Fig 7b methodology, but
  // routed across the whole fleet).
  Rng rng(8);
  std::vector<double> latencies;
  double worst_err = 0;
  for (int q = 0; q < 200; ++q) {
    StreamId sid = ids[rng.NextBounded(kStreams)];
    Timestamp t1;
    Timestamp t2;
    if (!SampleQueryRange(rng, horizon, 0, static_cast<int>(rng.NextBounded(4)),
                          static_cast<int>(rng.NextBounded(4)), &t1, &t2)) {
      continue;
    }
    (*store)->DropCaches();
    QuerySpec spec{.t1 = t1, .t2 = t2, .op = QueryOp::kCount};
    Stopwatch timer;
    auto result = (*store)->Query(sid, spec);
    if (result.ok()) {
      latencies.push_back(timer.ElapsedMillis());
    }
  }
  std::printf("\ncold-cache fleet queries: median %.2f ms, p95 %.2f ms, max %.2f ms\n",
              Percentile(latencies, 50), Percentile(latencies, 95), Percentile(latencies, 100));

  // Fleet aggregate: total event count across all 32 streams, one call.
  QuerySpec fleet{.t1 = 0, .t2 = horizon, .op = QueryOp::kCount};
  Stopwatch fleet_timer;
  auto total = (*store)->QueryAggregate(ids, fleet);
  if (total.ok()) {
    worst_err = RelativeError(total->estimate, static_cast<double>(total_events));
    std::printf("fleet-wide count: %.0f (truth %llu, err %.4f%%) in %.1f ms\n", total->estimate,
                static_cast<unsigned long long>(total_events), worst_err * 100,
                fleet_timer.ElapsedMillis());
  }
  std::printf("\nshape check vs paper: batched ingest keeps the working set bounded; "
              "latencies stay low and stable at fleet scale.\n");
  return 0;
}
