// Multi-connection load driver for sserver's service core (src/net/server.h),
// run in-process against a loopback listener. Six phases:
//
//   1. load        — N pipelined connections (default 32), each appending to
//                    its own stream with a bounded in-flight window; reports
//                    aggregate appends/s and durable-ack latency percentiles.
//   2. shed        — tiny admission budget + kShed: pipelined batches must be
//                    rejected with kFailedPrecondition, never queued; the
//                    ss_net_backpressure_shed_total delta proves the policy.
//   3. block       — tiny admission budget + kBlock: the server stops reading
//                    saturating connections (TCP pushback) instead of
//                    shedding; every append is eventually acked, and the
//                    ss_net_backpressure_blocked_total delta proves it.
//   4. kill        — sync-WAL store, pipelined appends, Server::Abort() mid
//                    stream (store leaked: no destructor flush); the store is
//                    reopened and every acked append must have survived via
//                    WAL replay. acked_lost must be 0.
//   5. noisy       — two-tenant fair-share isolation: a hot tenant saturates
//                    far beyond its per-tenant share under kShed while a
//                    quiet tenant trickles small appends. The quiet tenant
//                    must see zero sheds and a bounded ack p99 — the whole
//                    point of per-tenant admission budgets.
//   6. flaky       — FaultNet severs connections mid-load while RetryingClient
//                    fleets pipeline appends under the (session, seq) replay
//                    contract. Gates: every append acked, and the store holds
//                    EXACTLY the acked count per stream — zero acked-append
//                    loss AND zero duplicate application across reconnects.
//
// SS_NET_CONNS / SS_NET_EVENTS override the shape; SS_BENCH_PROFILE=ci
// shrinks the per-connection event count for the CI perf-trajectory leg.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/clock.h"
#include "src/net/client.h"
#include "src/net/fault_net.h"
#include "src/net/retry_client.h"
#include "src/net/server.h"
#include "src/net/socket.h"
#include "src/net/tenant.h"
#include "src/obs/metrics.h"

namespace {

using namespace ss;
using namespace ss::bench;

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') {
    return fallback;
  }
  return std::strtoull(v, nullptr, 10);
}

StreamConfig BenchConfig() {
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  return config;
}

StatusOr<std::unique_ptr<SummaryStore>> OpenStore(const std::string& dir, bool sync_wal) {
  StoreOptions options;
  options.dir = dir;
  options.lsm.sync_wal = sync_wal;
  return SummaryStore::Open(options);
}

Counter& ShedCounter() {
  return MetricRegistry::Default().GetCounter("ss_net_backpressure_shed_total");
}
Counter& BlockedCounter() {
  return MetricRegistry::Default().GetCounter("ss_net_backpressure_blocked_total");
}

// One connection's worth of windowed pipelined appends: keeps up to `window`
// requests in flight, records per-request ack latency, and returns the
// number of successfully acked appends.
struct ConnResult {
  uint64_t acked = 0;
  uint64_t rejected = 0;  // non-OK acks (sheds)
  std::vector<double> ack_ms;
  bool io_error = false;
};

ConnResult DriveConnection(uint16_t port, StreamId sid, uint64_t events, size_t window,
                           const Stopwatch& epoch, uint32_t tenant = 0,
                           std::string_view token = {}) {
  ConnResult out;
  auto client = net::Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    out.io_error = true;
    return out;
  }
  net::Client& c = **client;
  if (tenant != 0 && !c.Hello(tenant, token).ok()) {
    out.io_error = true;
    return out;
  }
  if (!c.CreateStream(sid, BenchConfig()).ok()) {
    out.io_error = true;
    return out;
  }
  out.ack_ms.reserve(events);
  std::unordered_map<uint64_t, double> sent_us;
  sent_us.reserve(window * 2);
  uint64_t sent = 0;
  Timestamp ts = 0;
  while (sent < events || c.inflight() > 0) {
    while (sent < events && c.inflight() < window) {
      auto id = c.SendAppend(sid, ++ts, 1.0);
      if (!id.ok()) {
        out.io_error = true;
        return out;
      }
      sent_us[*id] = epoch.ElapsedMicros();
      ++sent;
    }
    auto ack = c.ReceiveAck();
    if (!ack.ok()) {
      out.io_error = true;  // server gone (kill phase) — acks so far stand
      return out;
    }
    auto it = sent_us.find(ack->request_id);
    if (it != sent_us.end()) {
      out.ack_ms.push_back((epoch.ElapsedMicros() - it->second) / 1000.0);
      sent_us.erase(it);
    }
    if (ack->status.ok()) {
      ++out.acked;
    } else {
      ++out.rejected;
    }
  }
  return out;
}

}  // namespace

int main() {
  const char* profile_env = std::getenv("SS_BENCH_PROFILE");
  const bool ci = profile_env != nullptr && std::strcmp(profile_env, "ci") == 0;
  const int kConns = static_cast<int>(EnvU64("SS_NET_CONNS", 32));
  const uint64_t kEvents = EnvU64("SS_NET_EVENTS", ci ? 2000 : 20000);
  const size_t kWindow = 128;

  BenchReport report("net");
  report.AddMeta("profile", profile_env != nullptr ? profile_env : "default");
  report.AddMeta("connections", std::to_string(kConns));
  report.AddMeta("events_per_conn", std::to_string(kEvents));

  // ------------------------------------------------------------ phase 1: load
  std::printf("=== net: %d pipelined connections x %llu appends (window %zu) ===\n", kConns,
              static_cast<unsigned long long>(kEvents), kWindow);
  {
    ScopedTempDir dir("net_load");
    auto store = OpenStore(dir.path(), /*sync_wal=*/false);
    if (!store.ok()) {
      std::fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
      return 1;
    }
    auto server = net::Server::Start(store->get(), net::ServerOptions{});
    if (!server.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", server.status().ToString().c_str());
      return 1;
    }
    Stopwatch epoch;
    std::vector<ConnResult> results(kConns);
    std::vector<std::thread> threads;
    threads.reserve(kConns);
    for (int t = 0; t < kConns; ++t) {
      threads.emplace_back([&, t] {
        results[t] =
            DriveConnection((*server)->port(), static_cast<StreamId>(t + 1), kEvents, kWindow, epoch);
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    const double wall_s = epoch.ElapsedSeconds();
    uint64_t acked = 0;
    std::vector<double> ack_ms;
    for (const auto& r : results) {
      if (r.io_error) {
        std::fprintf(stderr, "load phase: connection hit an I/O error\n");
        return 1;
      }
      acked += r.acked;
      ack_ms.insert(ack_ms.end(), r.ack_ms.begin(), r.ack_ms.end());
    }
    const uint64_t expected = static_cast<uint64_t>(kConns) * kEvents;
    if (acked != expected) {
      std::fprintf(stderr, "load phase: acked %llu of %llu appends\n",
                   static_cast<unsigned long long>(acked),
                   static_cast<unsigned long long>(expected));
      return 1;
    }
    const double rate = static_cast<double>(acked) / wall_s;
    std::printf("load: %llu appends acked in %.2f s -> %.0f appends/s\n",
                static_cast<unsigned long long>(acked), wall_s, rate);
    std::printf("ack latency: p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n", Percentile(ack_ms, 50),
                Percentile(ack_ms, 95), Percentile(ack_ms, 99));
    report.Add("load_appends_per_sec", rate, "appends/s", "higher");
    report.Add("ack_p50_ms", Percentile(ack_ms, 50), "ms", "lower");
    report.Add("ack_p95_ms", Percentile(ack_ms, 95), "ms", "lower");
    report.Add("ack_p99_ms", Percentile(ack_ms, 99), "ms", "lower");
    (*server)->Stop();
  }

  // ------------------------------------------------------------ phase 2: shed
  {
    ScopedTempDir dir("net_shed");
    auto store = OpenStore(dir.path(), /*sync_wal=*/false);
    net::ServerOptions options;
    options.ingest_queue_events = 512;
    options.backpressure = net::ServerOptions::Backpressure::kShed;
    auto server = net::Server::Start(store->get(), options);
    if (!server.ok()) {
      std::fprintf(stderr, "shed server start failed\n");
      return 1;
    }
    const uint64_t shed_before = ShedCounter().value();
    const uint64_t shed_events = std::min<uint64_t>(kEvents, 4096);
    Stopwatch epoch;
    std::vector<ConnResult> results(kConns);
    std::vector<std::thread> threads;
    for (int t = 0; t < kConns; ++t) {
      threads.emplace_back([&, t] {
        // Window far beyond the global budget: most in-flight appends must
        // be shed, and the connection must survive every rejection.
        results[t] = DriveConnection((*server)->port(), static_cast<StreamId>(t + 1), shed_events,
                                     /*window=*/1024, epoch);
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    uint64_t acked = 0, rejected = 0;
    for (const auto& r : results) {
      if (r.io_error) {
        std::fprintf(stderr, "shed phase: connection hit an I/O error\n");
        return 1;
      }
      acked += r.acked;
      rejected += r.rejected;
    }
    const uint64_t shed_delta = ShedCounter().value() - shed_before;
    std::printf("shed: %llu acked, %llu shed (metric delta %llu) with budget 512\n",
                static_cast<unsigned long long>(acked), static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(shed_delta));
    if (shed_delta == 0 || rejected == 0) {
      std::fprintf(stderr, "shed phase: backpressure never engaged\n");
      return 1;
    }
    report.Add("shed_rejected_requests", static_cast<double>(rejected), "requests", "higher");
    (*server)->Stop();
  }

  // ----------------------------------------------------------- phase 3: block
  {
    ScopedTempDir dir("net_block");
    auto store = OpenStore(dir.path(), /*sync_wal=*/false);
    net::ServerOptions options;
    options.ingest_queue_events = 512;
    options.backpressure = net::ServerOptions::Backpressure::kBlock;
    auto server = net::Server::Start(store->get(), options);
    if (!server.ok()) {
      std::fprintf(stderr, "block server start failed\n");
      return 1;
    }
    const uint64_t blocked_before = BlockedCounter().value();
    const uint64_t block_events = std::min<uint64_t>(kEvents, 4096);
    Stopwatch epoch;
    std::vector<ConnResult> results(kConns);
    std::vector<std::thread> threads;
    for (int t = 0; t < kConns; ++t) {
      threads.emplace_back([&, t] {
        results[t] = DriveConnection((*server)->port(), static_cast<StreamId>(t + 1), block_events,
                                     /*window=*/256, epoch);
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    const double wall_s = epoch.ElapsedSeconds();
    uint64_t acked = 0;
    for (const auto& r : results) {
      if (r.io_error || r.rejected != 0) {
        std::fprintf(stderr, "block phase: lost or rejected appends under kBlock\n");
        return 1;
      }
      acked += r.acked;
    }
    const uint64_t blocked_delta = BlockedCounter().value() - blocked_before;
    const double rate = static_cast<double>(acked) / wall_s;
    std::printf("block: all %llu appends acked at %.0f appends/s; %llu block events\n",
                static_cast<unsigned long long>(acked), rate,
                static_cast<unsigned long long>(blocked_delta));
    if (blocked_delta == 0) {
      std::fprintf(stderr, "block phase: backpressure never engaged\n");
      return 1;
    }
    report.Add("block_throttled_appends_per_sec", rate, "appends/s", "higher");
    (*server)->Stop();
  }

  // ------------------------------------------------------------ phase 4: kill
  {
    ScopedTempDir dir("net_kill");
    const uint64_t kill_events = std::min<uint64_t>(kEvents, 2000);
    std::vector<ConnResult> results(kConns);
    std::atomic<uint64_t> acks_seen{0};
    {
      auto store = OpenStore(dir.path(), /*sync_wal=*/true);
      if (!store.ok()) {
        std::fprintf(stderr, "kill store open failed\n");
        return 1;
      }
      auto server = net::Server::Start(store->get(), net::ServerOptions{});
      if (!server.ok()) {
        std::fprintf(stderr, "kill server start failed\n");
        return 1;
      }
      Stopwatch epoch;
      std::vector<std::thread> threads;
      for (int t = 0; t < kConns; ++t) {
        threads.emplace_back([&, t] {
          auto client = net::Client::Connect("127.0.0.1", (*server)->port());
          if (!client.ok()) {
            results[t].io_error = true;
            return;
          }
          net::Client& c = **client;
          if (!c.CreateStream(static_cast<StreamId>(t + 1), BenchConfig()).ok()) {
            results[t].io_error = true;
            return;
          }
          Timestamp ts = 0;
          uint64_t sent = 0;
          while (sent < kill_events || c.inflight() > 0) {
            while (sent < kill_events && c.inflight() < 64) {
              if (!c.SendAppend(static_cast<StreamId>(t + 1), ++ts, 1.0).ok()) {
                return;  // server killed mid-send: acks so far stand
              }
              ++sent;
            }
            auto ack = c.ReceiveAck();
            if (!ack.ok()) {
              return;  // reset/EOF: the kill
            }
            if (ack->status.ok()) {
              ++results[t].acked;
              acks_seen.fetch_add(1);
            }
          }
        });
      }
      // Kill the server once a quarter of the fleet's appends are acked:
      // enough traffic that acks are genuinely in flight everywhere.
      const uint64_t kill_at = static_cast<uint64_t>(kConns) * kill_events / 4;
      while (acks_seen.load() < kill_at) {
        std::this_thread::yield();
      }
      (*server)->Abort();
      for (auto& th : threads) {
        th.join();
      }
      // Hard kill: leak the store so no destructor flush cleans up after us.
      // WAL replay alone must account for every acked append.
      (void)store->release();
    }

    auto reopened = OpenStore(dir.path(), /*sync_wal=*/true);
    if (!reopened.ok()) {
      std::fprintf(stderr, "kill phase: reopen failed: %s\n",
                   reopened.status().ToString().c_str());
      return 1;
    }
    uint64_t total_acked = 0, total_recovered = 0, lost = 0;
    for (int t = 0; t < kConns; ++t) {
      total_acked += results[t].acked;
      auto stream = (*reopened)->GetStream(static_cast<StreamId>(t + 1));
      const uint64_t recovered = stream.ok() ? (*stream)->element_count() : 0;
      total_recovered += recovered;
      if (recovered < results[t].acked) {
        lost += results[t].acked - recovered;
      }
    }
    std::printf("kill: %llu acked before abort, %llu recovered after replay, %llu lost\n",
                static_cast<unsigned long long>(total_acked),
                static_cast<unsigned long long>(total_recovered),
                static_cast<unsigned long long>(lost));
    if (lost != 0) {
      std::fprintf(stderr, "kill phase: acked appends lost across kill+replay\n");
      return 1;
    }
    report.Add("kill_acked_appends", static_cast<double>(total_acked), "appends", "higher");
    report.Add("kill_acked_lost", static_cast<double>(lost), "appends", "lower");
  }

  // ----------------------------------------------------------- phase 5: noisy
  {
    ScopedTempDir dir("net_noisy");
    auto store = OpenStore(dir.path(), /*sync_wal=*/false);
    auto registry = net::TenantRegistry::Parse(
        "1 hot   hot-token   0 0 0\n"
        "2 quiet quiet-token 0 0 0\n");
    if (!registry.ok()) {
      std::fprintf(stderr, "noisy phase: registry parse failed\n");
      return 1;
    }
    net::ServerOptions options;
    options.ingest_queue_events = 512;  // per-tenant share: 256
    options.backpressure = net::ServerOptions::Backpressure::kShed;
    options.tenants = std::make_shared<const net::TenantRegistry>(std::move(registry).value());
    auto server = net::Server::Start(store->get(), options);
    if (!server.ok()) {
      std::fprintf(stderr, "noisy server start failed\n");
      return 1;
    }
    Counter& hot_shed =
        MetricRegistry::Default().GetCounter("ss_net_backpressure_shed_total", "tenant=\"hot\"");
    Counter& quiet_shed =
        MetricRegistry::Default().GetCounter("ss_net_backpressure_shed_total", "tenant=\"quiet\"");
    const uint64_t hot_shed_before = hot_shed.value();
    const uint64_t quiet_shed_before = quiet_shed.value();

    const int hot_conns = std::min(kConns, 8);
    const uint64_t hot_events = std::min<uint64_t>(kEvents, 4096);
    const uint64_t quiet_events = std::min<uint64_t>(kEvents, 512);
    Stopwatch epoch;
    std::vector<ConnResult> hot_results(hot_conns);
    ConnResult quiet_result;
    std::vector<std::thread> threads;
    for (int t = 0; t < hot_conns; ++t) {
      threads.emplace_back([&, t] {
        // Window far beyond the hot tenant's 256-event share: the hot tenant
        // lives in permanent shed.
        hot_results[t] = DriveConnection((*server)->port(), static_cast<StreamId>(t + 1),
                                         hot_events, /*window=*/1024, epoch, 1, "hot-token");
      });
    }
    threads.emplace_back([&] {
      // Quiet tenant: a trickle (4 in flight) far below its own share.
      quiet_result = DriveConnection((*server)->port(), /*sid=*/1, quiet_events,
                                     /*window=*/4, epoch, 2, "quiet-token");
    });
    for (auto& th : threads) {
      th.join();
    }
    uint64_t hot_rejected = 0;
    for (const auto& r : hot_results) {
      if (r.io_error) {
        std::fprintf(stderr, "noisy phase: hot connection hit an I/O error\n");
        return 1;
      }
      hot_rejected += r.rejected;
    }
    if (quiet_result.io_error) {
      std::fprintf(stderr, "noisy phase: quiet connection hit an I/O error\n");
      return 1;
    }
    const uint64_t hot_shed_delta = hot_shed.value() - hot_shed_before;
    const uint64_t quiet_shed_delta = quiet_shed.value() - quiet_shed_before;
    const double quiet_p99 = Percentile(quiet_result.ack_ms, 99);
    std::printf("noisy: hot rejected %llu (tenant shed metric %llu); quiet acked %llu, "
                "rejected %llu, ack p99 %.2f ms\n",
                static_cast<unsigned long long>(hot_rejected),
                static_cast<unsigned long long>(hot_shed_delta),
                static_cast<unsigned long long>(quiet_result.acked),
                static_cast<unsigned long long>(quiet_result.rejected), quiet_p99);
    // Gates: the hot tenant must actually be shedding (the load is real), the
    // quiet tenant must never be shed (fair share isolates it), and its ack
    // p99 must stay bounded (generous absolute bound — the point is that it
    // is not starved, not that it is fast).
    if (hot_rejected == 0 || hot_shed_delta == 0) {
      std::fprintf(stderr, "noisy phase: hot tenant was never shed — load too small\n");
      return 1;
    }
    if (quiet_result.rejected != 0 || quiet_shed_delta != 0) {
      std::fprintf(stderr, "noisy phase: quiet tenant was shed under fair share\n");
      return 1;
    }
    if (quiet_result.acked != quiet_events) {
      std::fprintf(stderr, "noisy phase: quiet tenant lost appends\n");
      return 1;
    }
    if (quiet_p99 > 250.0) {
      std::fprintf(stderr, "noisy phase: quiet tenant ack p99 %.2f ms exceeds 250 ms\n",
                   quiet_p99);
      return 1;
    }
    report.Add("noisy_hot_rejected_requests", static_cast<double>(hot_rejected), "requests",
               "higher");
    report.Add("noisy_quiet_rejected_requests", static_cast<double>(quiet_result.rejected),
               "requests", "lower");
    report.Add("noisy_quiet_ack_p99_ms", quiet_p99, "ms", "lower");
    (*server)->Stop();
  }

  // ----------------------------------------------------------- phase 6: flaky
  {
    ScopedTempDir dir("net_flaky");
    auto store = OpenStore(dir.path(), /*sync_wal=*/false);
    if (!store.ok()) {
      std::fprintf(stderr, "flaky store open failed\n");
      return 1;
    }
    net::FaultNet fault;
    net::SetNetOpsForTest(&fault);
    auto server = net::Server::Start(store->get(), net::ServerOptions{});
    if (!server.ok()) {
      std::fprintf(stderr, "flaky server start failed\n");
      net::SetNetOpsForTest(nullptr);
      return 1;
    }
    const int flaky_conns = std::min(kConns, 4);
    const uint64_t flaky_events = std::min<uint64_t>(kEvents, 1000);
    net::ClientOptions client_options;
    client_options.rpc_timeout_ms = 5000;
    client_options.max_retries = 10;
    client_options.backoff_initial_ms = 1;
    client_options.backoff_max_ms = 50;

    // Chaos thread: whenever no fault is armed, schedule the next sever a few
    // hundred frames ahead (alternating send/recv side). The workload never
    // sees a quiet network for long.
    std::atomic<bool> chaos_stop{false};
    std::thread chaos([&] {
      bool recv_side = false;
      while (!chaos_stop.load()) {
        if (!fault.armed()) {
          if (recv_side) {
            fault.SeverAfterRecvFrames(fault.frames_received() + 200);
          } else {
            fault.SeverAfterSentFrames(fault.frames_sent() + 200);
          }
          recv_side = !recv_side;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });

    Stopwatch epoch;
    std::vector<ConnResult> results(flaky_conns);
    std::vector<uint64_t> retries(flaky_conns, 0), reconnects(flaky_conns, 0);
    std::vector<std::thread> threads;
    for (int t = 0; t < flaky_conns; ++t) {
      threads.emplace_back([&, t] {
        const StreamId sid = static_cast<StreamId>(t + 1);
        auto client =
            net::RetryingClient::Connect("127.0.0.1", (*server)->port(), client_options);
        if (!client.ok()) {
          results[t].io_error = true;
          return;
        }
        net::RetryingClient& c = **client;
        if (!c.CreateStream(sid, BenchConfig()).ok()) {
          results[t].io_error = true;
          return;
        }
        Timestamp ts = 0;
        uint64_t sent = 0;
        while (sent < flaky_events || c.inflight() > 0) {
          while (sent < flaky_events && c.inflight() < 32) {
            if (!c.SendAppend(sid, ++ts, 1.0).ok()) {
              results[t].io_error = true;
              return;
            }
            ++sent;
          }
          auto ack = c.ReceiveAck();
          if (!ack.ok()) {
            results[t].io_error = true;  // max_retries of recovery exhausted
            return;
          }
          if (ack->status.ok()) {
            ++results[t].acked;
          } else {
            ++results[t].rejected;
          }
        }
        retries[t] = c.retries();
        reconnects[t] = c.reconnects();
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    chaos_stop.store(true);
    chaos.join();
    const double wall_s = epoch.ElapsedSeconds();

    uint64_t acked = 0, total_retries = 0, total_reconnects = 0;
    for (int t = 0; t < flaky_conns; ++t) {
      if (results[t].io_error || results[t].rejected != 0) {
        std::fprintf(stderr, "flaky phase: connection %d did not converge\n", t);
        net::SetNetOpsForTest(nullptr);
        return 1;
      }
      acked += results[t].acked;
      total_retries += retries[t];
      total_reconnects += reconnects[t];
    }
    // The ledger: the server must hold EXACTLY the acked count per stream.
    // A shortfall is an acked append lost to a sever; an excess is a replayed
    // append applied twice past the (session, seq) dedup.
    uint64_t lost = 0, duplicated = 0;
    for (int t = 0; t < flaky_conns; ++t) {
      auto stream = (*store)->GetStream(static_cast<StreamId>(t + 1));
      const uint64_t count = stream.ok() ? (*stream)->element_count() : 0;
      if (count < results[t].acked) {
        lost += results[t].acked - count;
      } else {
        duplicated += count - results[t].acked;
      }
    }
    const uint64_t resets = fault.injected_resets();
    const double rate = static_cast<double>(acked) / wall_s;
    std::printf("flaky: %llu appends acked at %.0f appends/s through %llu injected resets "
                "(%llu retries, %llu reconnects); %llu lost, %llu duplicated\n",
                static_cast<unsigned long long>(acked), rate,
                static_cast<unsigned long long>(resets),
                static_cast<unsigned long long>(total_retries),
                static_cast<unsigned long long>(total_reconnects),
                static_cast<unsigned long long>(lost),
                static_cast<unsigned long long>(duplicated));
    (*server)->Stop();
    net::SetNetOpsForTest(nullptr);
    if (acked != static_cast<uint64_t>(flaky_conns) * flaky_events) {
      std::fprintf(stderr, "flaky phase: not every append was acked\n");
      return 1;
    }
    if (lost != 0 || duplicated != 0) {
      std::fprintf(stderr, "flaky phase: acked-append ledger diverged (lost %llu, dup %llu)\n",
                   static_cast<unsigned long long>(lost),
                   static_cast<unsigned long long>(duplicated));
      return 1;
    }
    if (resets == 0) {
      std::fprintf(stderr, "flaky phase: chaos never fired — gate proved nothing\n");
      return 1;
    }
    report.Add("flaky_appends_per_sec", rate, "appends/s", "higher");
    // injected_resets is deliberately NOT reported: the count scales with
    // wall time, so a faster machine would read as a "regression". The
    // resets>0 gate above already proves the chaos was real.
    report.Add("flaky_acked_lost", static_cast<double>(lost), "appends", "lower");
    report.Add("flaky_acked_duplicated", static_cast<double>(duplicated), "appends", "lower");
  }

  std::printf("\nshape check: pipelining sustains the fleet, backpressure engages under "
              "overload, no acked append is lost to a hard kill, fair-share admission "
              "isolates a quiet tenant from a noisy neighbor, and retrying clients ride "
              "out injected connection faults without losing or double-applying an acked "
              "append.\n");
  const char* out = std::getenv("SS_BENCH_OUT");
  std::string report_path = out != nullptr ? out : "BENCH_net.json";
  if (report.WriteFile(report_path)) {
    std::printf("bench report written to %s\n", report_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write bench report to %s\n", report_path.c_str());
    return 1;
  }
  return 0;
}
