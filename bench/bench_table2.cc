// Table 2: cost and runtime for time-series stores. An exact enum store
// (the InfluxDB stand-in) vs SummaryStore at 10x-class and 100x-class decay.
// For each store: on-disk size, estimated media cost, and cold-cache latency
// + error for three range-count queries — full scan, large range (80% of the
// stream), small range (random 2%).
//
// Scale substitution: the paper inserts 10 billion events over a year; we
// insert 2M over a synthetic year and report costs per-GB-scaled. The shape
// to check: enum-store size/latency is orders of magnitude above
// SummaryStore's, errors stay ~0-2%.
#include "bench/bench_util.h"
#include "bench/heatmap.h"
#include "src/baseline/enum_store.h"

namespace {

using namespace ss;
using namespace ss::bench;

constexpr uint64_t kNumEvents = 2000000;
constexpr double kHddDollarsPerGb = 0.05;
constexpr double kSsdDollarsPerGb = 0.60;

struct QueryOutcome {
  double seconds;
  double error;
};

struct Row {
  std::string name;
  double size_gb;
  QueryOutcome scan, large, small;
};

void PrintRow(const Row& row) {
  std::printf("%-16s %9.4f GB  $%7.4f/$%7.4f   %8.4fs (%5.2f%%)  %8.4fs (%5.2f%%)  %8.4fs "
              "(%5.2f%%)\n",
              row.name.c_str(), row.size_gb, row.size_gb * kHddDollarsPerGb,
              row.size_gb * kSsdDollarsPerGb, row.scan.seconds, row.scan.error * 100,
              row.large.seconds, row.large.error * 100, row.small.seconds,
              row.small.error * 100);
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf("=== Table 2: store size, cost, and range-count query latency ===\n");
  std::printf("(scaled: %llu events / synthetic year; cost at $%.2f/GB HDD, $%.2f/GB SSD)\n\n",
              static_cast<unsigned long long>(kNumEvents), kHddDollarsPerGb, kSsdDollarsPerGb);

  // Shared synthetic stream + oracle.
  Oracle oracle;
  std::vector<Event> events;
  events.reserve(kNumEvents);
  {
    SyntheticStreamSpec spec;
    spec.arrival = ArrivalKind::kPoisson;
    spec.mean_interarrival = 16.0;
    spec.value_universe = 1000;
    spec.seed = 2;
    SyntheticStream gen(spec);
    for (uint64_t i = 0; i < kNumEvents; ++i) {
      events.push_back(gen.Next());
      oracle.Add(events.back());
    }
  }
  Timestamp start = events.front().ts;
  Timestamp end = events.back().ts;
  Timestamp span = end - start;
  Rng rng(77);
  Timestamp small_start = start + static_cast<Timestamp>(rng.NextBounded(
                                      static_cast<uint64_t>(span * 98 / 100)));
  struct RangeDef {
    Timestamp t1, t2;
  };
  RangeDef scan_range{start, end};
  RangeDef large_range{end - span * 8 / 10, end};
  RangeDef small_range{small_start, small_start + span * 2 / 100};

  std::printf("%-16s %12s %20s %18s %18s %18s\n", "store", "size", "cost HDD/SSD", "scan",
              "large (80%)", "small (2%)");

  // ---------------------------------------------------------- exact baseline
  {
    ScopedTempDir dir("table2_enum");
    auto kv = LsmStore::Open(dir.path());
    EnumStore enum_store(1, kv->get(), 4096);
    for (const Event& e : events) {
      (void)enum_store.Append(e.ts, e.value);
    }
    (void)enum_store.Flush();
    auto run = [&](const RangeDef& range) {
      (*kv)->DropCaches();
      Stopwatch timer;
      double estimate = *enum_store.QueryCount(range.t1, range.t2);
      double secs = timer.ElapsedSeconds();
      return QueryOutcome{secs, RelativeError(estimate, oracle.Count(range.t1, range.t2))};
    };
    Row row{"EnumStore",
            static_cast<double>((*kv)->ApproximateSizeBytes()) / 1e9,
            run(scan_range), run(large_range), run(small_range)};
    PrintRow(row);
  }

  // ------------------------------------------------------------ SummaryStore
  struct SStoreDef {
    const char* name;
    std::shared_ptr<const DecayFunction> decay;
  };
  const SStoreDef defs[] = {
      {"SStore 10x", std::make_shared<PowerLawDecay>(1, 1, 16, 1)},
      {"SStore 100x", std::make_shared<PowerLawDecay>(1, 1, 1, 1)},
  };
  for (const auto& def : defs) {
    ScopedTempDir dir(std::string("table2_") + def.name);
    StoreOptions options;
    options.dir = dir.path();
    auto store = SummaryStore::Open(options);
    StreamConfig config;
    config.decay = def.decay;
    config.operators = OperatorSet::AggregatesOnly();
    config.arrival_model = ArrivalModel::kPoisson;
    config.raw_threshold = 4;
    StreamId sid = *(*store)->CreateStream(std::move(config));
    for (const Event& e : events) {
      (void)(*store)->Append(sid, e.ts, e.value);
    }
    (void)(*store)->EvictAll();
    auto run = [&](const RangeDef& range) {
      (*store)->DropCaches();
      QuerySpec spec{.t1 = range.t1, .t2 = range.t2, .op = QueryOp::kCount};
      Stopwatch timer;
      auto result = (*store)->Query(sid, spec);
      double secs = timer.ElapsedSeconds();
      double err = result.ok()
                       ? RelativeError(result->estimate, oracle.Count(range.t1, range.t2))
                       : 1.0;
      return QueryOutcome{secs, err};
    };
    Row row{def.name, static_cast<double>((*store)->backend().ApproximateSizeBytes()) / 1e9,
            run(scan_range), run(large_range), run(small_range)};
    PrintRow(row);
  }
  std::printf("\nshape check vs paper: enum size/latency >> SStore; errors ~0-2%%.\n");
  return 0;
}
