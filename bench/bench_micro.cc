// Component microbenchmarks (google-benchmark): per-operator update and
// union costs, ingest cost per append under different decay families, query
// cost vs range length, and LSM backend put/get. These quantify the design
// choices DESIGN.md calls out (merge-heap ingest, raw-threshold
// materialization, block-cached reads).
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/baseline/enum_store.h"
#include "src/common/clock.h"
#include "src/obs/flight_recorder.h"
#include "src/core/summary_store.h"
#include "src/obs/metrics.h"
#include "src/random/rng.h"
#include "src/sketch/bloom.h"
#include "src/sketch/cms.h"
#include "src/sketch/hyperloglog.h"
#include "src/sketch/kernels.h"
#include "src/sketch/quantile.h"
#include "src/storage/lsm_store.h"
#include "src/storage/memory_backend.h"
#include "src/workload/generators.h"

namespace {

using namespace ss;

// ------------------------------------------------------------------ sketches

void BM_BloomUpdate(benchmark::State& state) {
  BloomFilter bloom(1024, 5);
  uint64_t i = 0;
  for (auto _ : state) {
    bloom.Update(0, static_cast<double>(i++));
  }
}
BENCHMARK(BM_BloomUpdate);

void BM_CmsUpdate(benchmark::State& state) {
  CountMinSketch cms(static_cast<uint32_t>(state.range(0)), 5);
  uint64_t i = 0;
  for (auto _ : state) {
    cms.Update(0, static_cast<double>(i++ % 1000));
  }
}
BENCHMARK(BM_CmsUpdate)->Arg(128)->Arg(1000);

void BM_CmsUnion(benchmark::State& state) {
  CountMinSketch a(static_cast<uint32_t>(state.range(0)), 5);
  CountMinSketch b(static_cast<uint32_t>(state.range(0)), 5);
  for (int i = 0; i < 1000; ++i) {
    a.Update(i, i);
    b.Update(i, i + 7);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MergeFrom(b));
  }
}
BENCHMARK(BM_CmsUnion)->Arg(128)->Arg(1000);

void BM_HllUpdate(benchmark::State& state) {
  HyperLogLog hll(12);
  uint64_t i = 0;
  for (auto _ : state) {
    hll.Update(0, static_cast<double>(i++));
  }
}
BENCHMARK(BM_HllUpdate);

void BM_QuantileUpdate(benchmark::State& state) {
  QuantileSketch sketch(128, 1);
  Rng rng(1);
  for (auto _ : state) {
    sketch.Update(0, rng.NextDouble());
  }
}
BENCHMARK(BM_QuantileUpdate);

// ------------------------------------------------------------ batch kernels

// Dispatched batch kernels vs the per-element scalar loops (AddHash is the
// exact scalar reference the kernels must match bit-for-bit). Items are
// hashes, so items/s ratios between the *Batch and *Sequential variants are
// the kernel speedup; main() emits them to the report as kernel_*_speedup_x.
constexpr size_t kKernelBatch = 4096;

const std::vector<uint64_t>& KernelHashes() {
  static const std::vector<uint64_t> hashes = [] {
    std::vector<uint64_t> h(kKernelBatch);
    Rng rng(0x5eed);
    for (auto& v : h) {
      v = rng.NextU64();
    }
    return h;
  }();
  return hashes;
}

void BM_KernelCmsBatch(benchmark::State& state) {
  CountMinSketch cms(static_cast<uint32_t>(state.range(0)), 5);
  for (auto _ : state) {
    cms.AddHashes(KernelHashes());
  }
  state.SetItemsProcessed(state.iterations() * kKernelBatch);
}
BENCHMARK(BM_KernelCmsBatch)->Arg(1000)->Arg(1024);

void BM_KernelCmsSequential(benchmark::State& state) {
  CountMinSketch cms(static_cast<uint32_t>(state.range(0)), 5);
  for (auto _ : state) {
    for (uint64_t h : KernelHashes()) {
      cms.AddHash(h);
    }
  }
  state.SetItemsProcessed(state.iterations() * kKernelBatch);
}
BENCHMARK(BM_KernelCmsSequential)->Arg(1000)->Arg(1024);

void BM_KernelBloomBatch(benchmark::State& state) {
  BloomFilter bloom(static_cast<uint32_t>(state.range(0)), 5);
  for (auto _ : state) {
    bloom.AddHashes(KernelHashes());
  }
  state.SetItemsProcessed(state.iterations() * kKernelBatch);
}
BENCHMARK(BM_KernelBloomBatch)->Arg(4099)->Arg(4096);

void BM_KernelBloomSequential(benchmark::State& state) {
  BloomFilter bloom(static_cast<uint32_t>(state.range(0)), 5);
  for (auto _ : state) {
    for (uint64_t h : KernelHashes()) {
      bloom.AddHash(h);
    }
  }
  state.SetItemsProcessed(state.iterations() * kKernelBatch);
}
BENCHMARK(BM_KernelBloomSequential)->Arg(4099)->Arg(4096);

void BM_KernelHllBatch(benchmark::State& state) {
  HyperLogLog hll(12);
  for (auto _ : state) {
    hll.AddHashes(KernelHashes());
  }
  state.SetItemsProcessed(state.iterations() * kKernelBatch);
}
BENCHMARK(BM_KernelHllBatch);

void BM_KernelHllSequential(benchmark::State& state) {
  HyperLogLog hll(12);
  for (auto _ : state) {
    for (uint64_t h : KernelHashes()) {
      hll.AddHash(h);
    }
  }
  state.SetItemsProcessed(state.iterations() * kKernelBatch);
}
BENCHMARK(BM_KernelHllSequential);

// -------------------------------------------------------------------- ingest

void BM_StreamAppend(benchmark::State& state) {
  MemoryBackend kv;
  StreamConfig config;
  if (state.range(0) == 0) {
    config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  } else {
    config.decay = std::make_shared<ExponentialDecay>(2.0, 1, 1);
  }
  config.operators = OperatorSet::Microbench();
  config.operators.cms_width = 128;
  config.raw_threshold = 32;
  Stream stream(1, config, &kv);
  Timestamp t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream.Append(++t, 1.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamAppend)->Arg(0)->Arg(1)->Name("BM_StreamAppend(0=powerlaw,1=exp)");

// Append through the public SummaryStore API, which pays the ss_obs
// instrumentation (one counter increment + one ScopedTimer histogram record).
// Compare against BM_StreamAppend to bound the metrics overhead; the
// acceptance budget is <= 5%.
void BM_StoreAppend(benchmark::State& state) {
  auto store = SummaryStore::Open(StoreOptions{}).value();
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  config.operators = OperatorSet::Microbench();
  config.operators.cms_width = 128;
  config.raw_threshold = 32;
  StreamId sid = *store->CreateStream(std::move(config));
  Timestamp t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->Append(sid, ++t, 1.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreAppend);

void BM_EnumAppend(benchmark::State& state) {
  MemoryBackend kv;
  EnumStore store(1, &kv, 4096);
  Timestamp t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Append(++t, 1.0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnumAppend);

// -------------------------------------------------------------------- query

class QueryFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (store_ != nullptr) {
      return;
    }
    store_ = SummaryStore::Open(StoreOptions{}).value().release();
    StreamConfig config;
    config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
    config.operators = OperatorSet::Microbench();
    config.operators.cms_width = 128;
    config.raw_threshold = 32;
    sid_ = *store_->CreateStream(std::move(config));
    SyntheticStreamSpec spec;
    spec.mean_interarrival = 16.0;
    SyntheticStream gen(spec);
    for (int i = 0; i < 500000; ++i) {
      Event e = gen.Next();
      (void)store_->Append(sid_, e.ts, e.value);
      now_ = e.ts;
    }
  }

  static SummaryStore* store_;
  static StreamId sid_;
  static Timestamp now_;
};

SummaryStore* QueryFixture::store_ = nullptr;
StreamId QueryFixture::sid_ = 0;
Timestamp QueryFixture::now_ = 0;

BENCHMARK_DEFINE_F(QueryFixture, CountByLength)(benchmark::State& state) {
  Timestamp length = state.range(0);
  Rng rng(3);
  uint64_t windows = 0;
  uint64_t bytes = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  for (auto _ : state) {
    Timestamp t2 = now_ - 3600 - static_cast<Timestamp>(rng.NextBounded(1000000));
    QuerySpec spec{.t1 = t2 - length, .t2 = t2, .op = QueryOp::kCount};
    spec.collect_trace = true;
    auto result = store_->Query(sid_, spec);
    benchmark::DoNotOptimize(result);
    if (result.ok() && result->trace != nullptr) {
      windows += result->trace->windows_scanned;
      bytes += result->trace->bytes_fetched;
      hits += result->trace->window_cache_hits;
      misses += result->trace->window_cache_misses;
    }
  }
  auto rate = benchmark::Counter::kAvgIterations;
  state.counters["windows"] = benchmark::Counter(static_cast<double>(windows), rate);
  state.counters["bytes_read"] = benchmark::Counter(static_cast<double>(bytes), rate);
  state.counters["cache_hits"] = benchmark::Counter(static_cast<double>(hits), rate);
  state.counters["cache_misses"] = benchmark::Counter(static_cast<double>(misses), rate);
}
BENCHMARK_REGISTER_F(QueryFixture, CountByLength)->Arg(60)->Arg(3600)->Arg(86400)->Arg(2628000);

// ---------------------------------------------------------------- concurrency

// Multi-threaded ingest through the public API: one stream per thread, so
// the registry shared lock is the only shared state on the hot path. Scaling
// vs ->Threads(1) bounds the cost of the concurrency layer.
void BM_StoreAppendMultiThread(benchmark::State& state) {
  static SummaryStore* store = nullptr;
  static std::vector<StreamId> sids;
  if (state.thread_index() == 0) {
    store = SummaryStore::Open(StoreOptions{}).value().release();
    sids.clear();
    for (int s = 0; s < state.threads(); ++s) {
      StreamConfig config;
      config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
      config.operators = OperatorSet::AggregatesOnly();
      config.raw_threshold = 32;
      sids.push_back(*store->CreateStream(std::move(config)));
    }
  }
  // The state loop's entry barrier guarantees thread 0's setup is visible.
  StreamId sid = 0;
  Timestamp t = 0;
  for (auto _ : state) {
    if (sid == 0) {
      sid = sids[state.thread_index()];
    }
    benchmark::DoNotOptimize(store->Append(sid, ++t, 1.0));
  }
  if (state.thread_index() == 0) {
    delete store;
    store = nullptr;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreAppendMultiThread)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

// Concurrent queries against ONE stream: readers share the stream lock and
// serialize only on the window-payload cache scan.
void BM_StoreQueryMultiThread(benchmark::State& state) {
  static SummaryStore* store = nullptr;
  static StreamId sid = 0;
  if (state.thread_index() == 0 && store == nullptr) {
    store = SummaryStore::Open(StoreOptions{}).value().release();
    StreamConfig config;
    config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
    config.operators = OperatorSet::AggregatesOnly();
    config.raw_threshold = 32;
    sid = *store->CreateStream(std::move(config));
    for (Timestamp t = 1; t <= 200000; ++t) {
      (void)store->Append(sid, t, 1.0);
    }
  }
  Rng rng(17 + state.thread_index());
  for (auto _ : state) {
    Timestamp t1 = 1 + static_cast<Timestamp>(rng.NextBounded(100000));
    QuerySpec spec{.t1 = t1, .t2 = t1 + 50000, .op = QueryOp::kCount};
    benchmark::DoNotOptimize(store->Query(sid, spec));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreQueryMultiThread)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

// Fleet query fan-out: serial baseline (fleet_query_threads = 1) vs the
// worker pool, same data. The parallel run must beat serial wall-clock on
// >= 8 streams (PR acceptance); both merge in id order, so answers match
// bitwise.
constexpr int kFleetStreams = 8;
constexpr Timestamp kFleetAppends = 100000;

SummaryStore* BuildFleetStore(size_t fleet_query_threads) {
  StoreOptions options;
  options.fleet_query_threads = fleet_query_threads;
  SummaryStore* store = SummaryStore::Open(options).value().release();
  for (int s = 0; s < kFleetStreams; ++s) {
    StreamConfig config;
    config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
    config.operators = OperatorSet::AggregatesOnly();
    config.raw_threshold = 32;
    StreamId sid = *store->CreateStream(std::move(config));
    for (Timestamp t = 1; t <= kFleetAppends; ++t) {
      (void)store->Append(sid, t, static_cast<double>(t % 7));
    }
  }
  return store;
}

void BM_FleetQuery(benchmark::State& state) {
  const bool parallel = state.range(0) != 0;
  // Built once and leaked deliberately: ~1.6M appends of setup shared by
  // every repetition of both variants.
  static SummaryStore* serial_store = BuildFleetStore(1);
  static SummaryStore* parallel_store = BuildFleetStore(0);
  SummaryStore* store = parallel ? parallel_store : serial_store;
  std::vector<StreamId> ids = store->ListStreams();
  for (auto _ : state) {
    QuerySpec spec{.t1 = 1, .t2 = kFleetAppends, .op = QueryOp::kSum};
    benchmark::DoNotOptimize(store->QueryAggregate(ids, spec));
  }
  state.SetItemsProcessed(state.iterations() * kFleetStreams);
}
BENCHMARK(BM_FleetQuery)->Arg(0)->Arg(1)->Name("BM_FleetQuery(0=serial,1=parallel)");

// ----------------------------------------------------------------------- obs

void BM_ObsCounterInc(benchmark::State& state) {
  static Counter& counter = MetricRegistry::Default().GetCounter("ss_bench_counter_total");
  for (auto _ : state) {
    counter.Inc();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramRecord(benchmark::State& state) {
  static LatencyHistogram& hist = MetricRegistry::Default().GetHistogram("ss_bench_hist_us");
  uint64_t v = 0;
  for (auto _ : state) {
    hist.Record(v++ & 0xFFF);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_ObsScopedTimer(benchmark::State& state) {
  static LatencyHistogram& hist = MetricRegistry::Default().GetHistogram("ss_bench_timer_us");
  for (auto _ : state) {
    ScopedTimer timer(hist);
    benchmark::DoNotOptimize(&timer);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsScopedTimer);

// The cost a hot path avoids by caching the reference in a local static.
void BM_ObsRegistryLookup(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(&MetricRegistry::Default().GetCounter("ss_bench_lookup_total"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsRegistryLookup);

// ------------------------------------------------------------------- storage

void BM_LsmPut(benchmark::State& state) {
  std::string dir = "/tmp/ss_bench_micro_lsm";
  (void)RemoveDirRecursive(dir);
  {
    auto store = LsmStore::Open(dir);
    Rng rng(4);
    uint64_t i = 0;
    std::string value(128, 'v');
    for (auto _ : state) {
      benchmark::DoNotOptimize((*store)->Put("key" + std::to_string(i++), value));
    }
    state.SetItemsProcessed(state.iterations());
  }  // destroy (flush) before removing the directory
  (void)RemoveDirRecursive(dir);
}
BENCHMARK(BM_LsmPut);

void BM_LsmGetWarm(benchmark::State& state) {
  std::string dir = "/tmp/ss_bench_micro_lsm_get";
  (void)RemoveDirRecursive(dir);
  {
    auto store = LsmStore::Open(dir);
    std::string value(128, 'v');
    for (int i = 0; i < 100000; ++i) {
      (void)(*store)->Put("key" + std::to_string(i), value);
    }
    (void)(*store)->Flush();
    Rng rng(5);
    for (auto _ : state) {
      std::string key = "key" + std::to_string(rng.NextBounded(100000));
      benchmark::DoNotOptimize((*store)->Get(key));
    }
    state.SetItemsProcessed(state.iterations());
  }
  (void)RemoveDirRecursive(dir);
}
BENCHMARK(BM_LsmGetWarm);

// Contended durable writes: with sync_wal every acked Put is a durability
// promise, and concurrent writers amortize the promise through group
// commit. fsyncs_per_write must fall below 1.0 once writers queue (at 1
// thread it is exactly 1.0 plus rotation noise).
void BM_LsmSyncPutContended(benchmark::State& state) {
  static LsmStore* store = nullptr;
  static uint64_t fsyncs_before = 0;
  const std::string dir = "/tmp/ss_bench_micro_lsm_sync";
  Counter& fsyncs = MetricRegistry::Default().GetCounter("ss_storage_wal_fsync_total");
  if (state.thread_index() == 0) {
    (void)RemoveDirRecursive(dir);
    LsmOptions options;
    options.sync_wal = true;
    store = LsmStore::Open(dir, options).value().release();
    fsyncs_before = fsyncs.value();
  }
  std::string value(128, 'v');
  uint64_t i = 0;
  for (auto _ : state) {
    std::string key = "t" + std::to_string(state.thread_index()) + "k" + std::to_string(i++);
    benchmark::DoNotOptimize(store->Put(key, value));
  }
  // The loop-exit barrier guarantees every thread's writes (and their
  // fsyncs) completed before thread 0 reads the counter.
  if (state.thread_index() == 0) {
    const double total_writes =
        static_cast<double>(state.iterations()) * state.threads();
    state.counters["fsyncs_per_write"] =
        benchmark::Counter((fsyncs.value() - fsyncs_before) /
                           (total_writes > 0 ? total_writes : 1.0));
    delete store;
    store = nullptr;
    (void)RemoveDirRecursive(dir);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsmSyncPutContended)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

// Durable batched writes: one WriteBatch of range(0) records per commit,
// so the fsync cost is amortized range(0)-fold. Items are records.
void BM_LsmPutBatchSync(benchmark::State& state) {
  const std::string dir = "/tmp/ss_bench_micro_lsm_batch";
  (void)RemoveDirRecursive(dir);
  {
    LsmOptions options;
    options.sync_wal = true;
    auto store = LsmStore::Open(dir, options);
    const int records = static_cast<int>(state.range(0));
    std::string value(128, 'v');
    uint64_t i = 0;
    for (auto _ : state) {
      WriteBatch batch;
      for (int r = 0; r < records; ++r) {
        batch.Put("key" + std::to_string(i++), value);
      }
      benchmark::DoNotOptimize((*store)->PutBatch(batch));
    }
    state.SetItemsProcessed(state.iterations() * records);
  }
  (void)RemoveDirRecursive(dir);
}
BENCHMARK(BM_LsmPutBatchSync)->Arg(1)->Arg(8)->Arg(64);

// ---------------------------------------------------------- flight recorder

// Measurement of the flight-recorder tax on the public append path. The
// only recorder code on that path is the kAppend Record() riding the
// existing 1-in-64 metrics sample, so the per-append tax is exactly
// Record_cost / 64. A direct recorder-on vs recorder-off A/B of full append
// runs cannot resolve a sub-1% delta on a shared machine (observed noise
// +/-3%), but both absolute costs measure stably, and a few percent of
// error in either leaves the ratio's verdict unchanged. The PR acceptance
// budget is < 1%.
double MeasureRecorderOverheadPct() {
  FlightRecorder& recorder = FlightRecorder::Default();
  recorder.set_enabled(true);
  constexpr int kRecordIters = 2000000;
  Stopwatch record_timer;
  for (int i = 0; i < kRecordIters; ++i) {
    recorder.Record(FlightEventType::kAppend, 1, 1);
  }
  const double record_ns = record_timer.ElapsedSeconds() * 1e9 / kRecordIters;

  auto store = SummaryStore::Open(StoreOptions{}).value();
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  config.operators = OperatorSet::AggregatesOnly();
  config.raw_threshold = 32;
  StreamId sid = *store->CreateStream(std::move(config));
  Timestamp t = 0;
  constexpr int kAppendIters = 200000;
  auto run_appends = [&]() {
    Stopwatch stopwatch;
    for (int i = 0; i < kAppendIters; ++i) {
      benchmark::DoNotOptimize(store->Append(sid, ++t, 1.0));
    }
    return stopwatch.ElapsedSeconds() * 1e9 / kAppendIters;
  };
  (void)run_appends();  // warm up window chain + allocator
  double append_ns = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    append_ns = std::min(append_ns, run_appends());
  }
  std::printf("flight recorder: Record()=%.1f ns, append=%.1f ns (sampled 1-in-64)\n",
              record_ns, append_ns);
  return (record_ns / 64.0) / append_ns * 100.0;
}

// Console output as usual, plus a copy of every successful run for the
// machine-readable report.
class ReportCapture : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (!run.error_occurred) {
        captured_.push_back(run);
      }
    }
  }

  const std::vector<Run>& captured() const { return captured_; }

 private:
  std::vector<Run> captured_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ReportCapture reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  const char* profile_env = std::getenv("SS_BENCH_PROFILE");
  ss::bench::BenchReport report("micro");
  report.AddMeta("profile", profile_env != nullptr ? profile_env : "default");
  report.AddMeta("kernel_impl", kernels::ImplName(kernels::ActiveImpl()));
  for (const auto& run : reporter.captured()) {
    const std::string name = run.benchmark_name();
    report.Add(name + ":ns_per_iter", run.GetAdjustedRealTime(), "ns", "lower");
    auto items = run.counters.find("items_per_second");
    if (items != run.counters.end()) {
      report.Add(name + ":items_per_sec", static_cast<double>(items->second),
                 "items/s", "higher");
    }
  }

  // Kernel speedups: dispatched batch vs the sequential scalar reference,
  // from the captured items/s of the paired benchmarks above.
  auto items_per_sec = [&](const std::string& name) -> double {
    for (const auto& run : reporter.captured()) {
      if (run.benchmark_name() == name) {
        auto it = run.counters.find("items_per_second");
        if (it != run.counters.end()) {
          return static_cast<double>(it->second);
        }
      }
    }
    return 0.0;
  };
  const struct {
    const char* metric;
    const char* batch;
    const char* sequential;
  } kKernelPairs[] = {
      {"kernel_cms_speedup_x", "BM_KernelCmsBatch/1000", "BM_KernelCmsSequential/1000"},
      {"kernel_bloom_speedup_x", "BM_KernelBloomBatch/4099", "BM_KernelBloomSequential/4099"},
      {"kernel_hll_speedup_x", "BM_KernelHllBatch", "BM_KernelHllSequential"},
  };
  for (const auto& pair : kKernelPairs) {
    double batch = items_per_sec(pair.batch);
    double sequential = items_per_sec(pair.sequential);
    if (batch > 0 && sequential > 0) {
      double speedup = batch / sequential;
      std::printf("%s: %.2fx (%s impl)\n", pair.metric, speedup,
                  kernels::ImplName(kernels::ActiveImpl()));
      report.Add(pair.metric, speedup, "x", "higher");
    }
  }

  double overhead_pct = MeasureRecorderOverheadPct();
  std::printf("flight recorder append overhead: %.3f%% (budget < 1%%)\n", overhead_pct);
  report.Add("flight_recorder_overhead_pct", overhead_pct, "pct", "lower");

  const char* out = std::getenv("SS_BENCH_OUT");
  std::string path = out != nullptr ? out : "BENCH_micro.json";
  if (report.WriteFile(path)) {
    std::printf("bench report written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "failed to write bench report to %s\n", path.c_str());
    return 1;
  }
  benchmark::Shutdown();
  if (overhead_pct >= 1.0) {
    std::fprintf(stderr, "FAIL: flight recorder overhead %.3f%% >= 1%% budget\n",
                 overhead_pct);
    return 1;
  }
  return 0;
}
