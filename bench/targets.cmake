# Included from the top-level CMakeLists (not add_subdirectory) so that
# build/bench/ holds only the bench executables — `for b in build/bench/*`
# then runs exactly the harness binaries.
function(ss_bench name)
  add_executable(${name} bench/${name}.cc)
  target_link_libraries(${name} PRIVATE
    ss_core ss_baseline ss_workload ss_analytics Threads::Threads)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

ss_bench(bench_table2)
ss_bench(bench_table5)
ss_bench(bench_fig5)
ss_bench(bench_fig6)
ss_bench(bench_fig7a)
ss_bench(bench_fig7b)
ss_bench(bench_fig9)
ss_bench(bench_fig10)
ss_bench(bench_fig11)
ss_bench(bench_fig12)
ss_bench(bench_fig13)
ss_bench(bench_tsm)

add_executable(bench_micro bench/bench_micro.cc)
target_link_libraries(bench_micro PRIVATE
  ss_core ss_baseline ss_workload ss_analytics ss_obs benchmark::benchmark Threads::Threads)
set_target_properties(bench_micro PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
ss_bench(bench_ablation)
ss_bench(bench_scale)
ss_bench(bench_net)
target_link_libraries(bench_net PRIVATE ss_net ss_obs)
