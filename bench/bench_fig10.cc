// Figure 10: the Figure 9 heatmaps with Poisson arrivals instead of
// infinite-variance Pareto. The paper's takeaway — uniformly low errors and
// much tighter CIs everywhere except the Bloom rows — should reproduce.
// (The paper omits latency for this figure as it matches Figure 9; so do we.)
#include "bench/heatmap.h"

int main() {
  ss::bench::HeatmapBenchConfig config;
  config.title = "fig10_poisson_100x";
  config.compaction_tag = "100X-class";
  config.arrival = ss::ArrivalKind::kPoisson;
  config.mean_interarrival = 16.0;
  config.decay = std::make_shared<ss::PowerLawDecay>(1, 1, 1, 1);
  config.model = ss::ArrivalModel::kPoisson;
  config.num_events = 2000000;
  config.measure_latency = false;
  int rc = ss::bench::RunHeatmapBench(config);
  if (rc != 0) {
    return rc;
  }

  // §7.2.2 also ran finite-variance Pareto (α = 2.2) streams and reports
  // them "similar to Poisson with marginally higher errors and CI widths"
  // without showing the heatmaps; we show them.
  config.title = "fig10_supplement_pareto_finite_variance";
  config.arrival = ss::ArrivalKind::kParetoFiniteVariance;
  config.model = ss::ArrivalModel::kGeneric;
  config.error_trials = 100;
  return ss::bench::RunHeatmapBench(config);
}
