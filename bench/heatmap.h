// Driver for the §7.2.2 microbenchmark heatmaps (Figures 9, 10, 11, 13):
// ingest a synthetic stream under a given decay, then measure per
// (age, length) class — for each of Count, Sum, Bloom filter, CMS —
// the 95%-ile query error, the 95%-ile relative CI width, and (optionally)
// cold-cache query latency.
#ifndef SUMMARYSTORE_BENCH_HEATMAP_H_
#define SUMMARYSTORE_BENCH_HEATMAP_H_

#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "src/workload/generators.h"

namespace ss::bench {

struct HeatmapBenchConfig {
  std::string title;
  std::string compaction_tag;  // e.g. "100X" (paper label); measured is printed too
  ArrivalKind arrival = ArrivalKind::kPoisson;
  double mean_interarrival = 16.0;  // seconds; ~2M events/synthetic year
  int64_t value_universe = 1000;
  std::shared_ptr<const DecayFunction> decay;
  ArrivalModel model = ArrivalModel::kGeneric;
  uint64_t num_events = 2000000;
  int error_trials = 150;   // queries per (age,length) cell for error/CI
  int latency_trials = 6;   // cold-cache queries per cell per op
  bool measure_latency = false;
  uint32_t cms_width = 1000;
  uint32_t bloom_bits = 1024;
  uint64_t seed = 20170101;
  // Alternative event source (overrides the synthetic stream when set);
  // must produce monotone timestamps.
  std::function<Event()> event_source;
  // Alternative query-operand sampler for kExistence/kFrequency probes
  // (defaults to uniform over the value universe).
  std::function<double(Rng&)> value_sampler;
};

inline int RunHeatmapBench(const HeatmapBenchConfig& config) {
  ScopedTempDir dir(config.title);
  StoreOptions options;
  if (config.measure_latency) {
    options.dir = dir.path();
  }
  auto store = SummaryStore::Open(options);
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n", store.status().ToString().c_str());
    return 1;
  }

  StreamConfig stream_config;
  stream_config.decay = config.decay;
  stream_config.operators = OperatorSet::Microbench();
  stream_config.operators.bloom_bits = config.bloom_bits;
  stream_config.operators.cms_width = config.cms_width;
  stream_config.operators.cms_depth = 5;
  stream_config.arrival_model = config.model;
  stream_config.raw_threshold = 32;
  stream_config.seed = config.seed;
  StreamId sid = *(*store)->CreateStream(std::move(stream_config));

  std::printf("=== %s ===\n", config.title.c_str());
  std::printf("ingesting %llu events (decay %s)...\n",
              static_cast<unsigned long long>(config.num_events),
              config.decay->Describe().c_str());

  Oracle oracle;
  {
    SyntheticStreamSpec spec;
    spec.arrival = config.arrival;
    spec.mean_interarrival = config.mean_interarrival;
    spec.value_universe = config.value_universe;
    spec.seed = config.seed;
    SyntheticStream synthetic(spec);
    Stopwatch ingest_timer;
    for (uint64_t i = 0; i < config.num_events; ++i) {
      Event e = config.event_source ? config.event_source() : synthetic.Next();
      oracle.Add(e);
      if (auto s = (*store)->Append(sid, e.ts, e.value); !s.ok()) {
        std::fprintf(stderr, "append failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    double secs = ingest_timer.ElapsedSeconds();
    std::printf("ingest: %.1fs (%.0f appends/sec)\n", secs,
                static_cast<double>(config.num_events) / secs);
  }
  auto* stream = (*store)->GetStream(sid).value();
  double raw_bytes = static_cast<double>(config.num_events) * 16.0;
  // Compaction is governed by window count (Table 5's model): at the paper's
  // per-stream scale the fixed per-window sketch budget amortizes over
  // billions of events; at laptop scale it dominates the byte count, so the
  // comparable figure is events-per-window.
  std::printf("windows: %zu (%.0f events/window avg; paper label %s; raw %.1f MB; "
              "see bench_table5 for the byte-compaction model)\n",
              stream->window_count(),
              static_cast<double>(config.num_events) / static_cast<double>(stream->window_count()),
              config.compaction_tag.c_str(), raw_bytes / 1e6);
  if (config.measure_latency) {
    if (auto s = (*store)->EvictAll(); !s.ok()) {
      std::fprintf(stderr, "evict failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  Timestamp now = oracle.last_ts();
  Timestamp start = oracle.first_ts();
  const char* op_names[4] = {"Count", "Sum", "BloomFilter", "CMS"};

  for (int op = 0; op < 4; ++op) {
    Heatmap err{op_names[op], "Error", config.compaction_tag};
    Heatmap ci{op_names[op], "CIwidth", config.compaction_tag};
    Heatmap lat{op_names[op], "Latency p95 ms", config.compaction_tag};
    Rng rng(config.seed ^ (0xbeef00 + static_cast<uint64_t>(op)));

    for (int li = 0; li < 4; ++li) {
      for (int ai = 0; ai < 4; ++ai) {
        std::vector<double> errors;
        std::vector<double> ci_widths;
        std::vector<double> latencies;
        for (int trial = 0; trial < config.error_trials; ++trial) {
          Timestamp t1;
          Timestamp t2;
          if (!SampleQueryRange(rng, now, start, ai, li, &t1, &t2)) {
            continue;
          }
          QuerySpec spec;
          spec.t1 = t1;
          spec.t2 = t2;
          double value =
              config.value_sampler
                  ? config.value_sampler(rng)
                  : static_cast<double>(
                        rng.NextBounded(static_cast<uint64_t>(config.value_universe)));
          bool measure_lat = config.measure_latency && trial < config.latency_trials;
          double truth = 0;
          switch (op) {
            case 0:
              spec.op = QueryOp::kCount;
              truth = oracle.Count(t1, t2);
              break;
            case 1:
              spec.op = QueryOp::kSum;
              truth = oracle.Sum(t1, t2);
              break;
            case 2:
              spec.op = QueryOp::kExistence;
              spec.value = value;
              truth = oracle.Exists(value, t1, t2) ? 1.0 : 0.0;
              break;
            case 3:
              spec.op = QueryOp::kFrequency;
              spec.value = value;
              truth = oracle.Frequency(value, t1, t2);
              break;
          }
          if (measure_lat) {
            (*store)->DropCaches();
          }
          Stopwatch timer;
          auto result = (*store)->Query(sid, spec);
          if (measure_lat) {
            latencies.push_back(timer.ElapsedMillis());
          }
          if (!result.ok()) {
            continue;
          }
          if (op == 2) {
            errors.push_back(result->bool_answer == (truth > 0) ? 0.0 : 1.0);
            ci_widths.push_back(result->ci_hi - result->ci_lo);
          } else {
            errors.push_back(RelativeError(result->estimate, truth));
            double denom = truth != 0 ? std::abs(truth) : 1.0;
            ci_widths.push_back(std::min(result->CiWidth() / denom, 2.0));  // paper clamps at 2
          }
        }
        err.cell[li][ai] = Percentile(errors, 95);
        ci.cell[li][ai] = Percentile(ci_widths, 95);
        lat.cell[li][ai] = Percentile(latencies, 95);
      }
    }
    err.Print();
    ci.Print();
    if (config.measure_latency) {
      lat.Print();
    }
  }
  std::printf("\n");
  return 0;
}

}  // namespace ss::bench

#endif  // SUMMARYSTORE_BENCH_HEATMAP_H_
