// Figure 7(a): write/ingest performance — time to ingest streams of growing
// size into SummaryStore vs the exact enum store (InfluxDB stand-in), both
// on the durable LSM backend.
//
// Shape to check: both scale near-linearly in event count, with SummaryStore
// sustaining a high append rate because the decayed working set stays small
// (the paper reports ~36M inserts/s memory-bound across 8 parallel streams
// on server hardware; single-threaded laptop-scale absolute rates differ).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/enum_store.h"
#include "src/workload/generators.h"

namespace {

using namespace ss;
using namespace ss::bench;

std::vector<Event> MakeEvents(uint64_t n) {
  SyntheticStreamSpec spec;
  spec.arrival = ArrivalKind::kPoisson;
  spec.mean_interarrival = 16.0;
  spec.seed = 3;
  SyntheticStream gen(spec);
  std::vector<Event> events;
  events.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    events.push_back(gen.Next());
  }
  return events;
}

}  // namespace

int main() {
  std::printf("=== Figure 7(a): ingest time vs dataset size ===\n");
  std::printf("%12s %16s %16s %18s %18s\n", "events", "SStore (s)", "Enum (s)",
              "SStore appends/s", "Enum appends/s");

  for (uint64_t n : {100000ULL, 300000ULL, 1000000ULL, 3000000ULL}) {
    std::vector<Event> events = MakeEvents(n);

    double sstore_secs;
    {
      ScopedTempDir dir("fig7a_sstore");
      StoreOptions options;
      options.dir = dir.path();
      auto store = SummaryStore::Open(options);
      StreamConfig config;
      config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
      config.operators = OperatorSet::Microbench();
      config.operators.cms_width = 256;
      config.raw_threshold = 32;
      StreamId sid = *(*store)->CreateStream(std::move(config));
      Stopwatch timer;
      for (const Event& e : events) {
        (void)(*store)->Append(sid, e.ts, e.value);
      }
      (void)(*store)->Flush();
      sstore_secs = timer.ElapsedSeconds();
    }

    double enum_secs;
    {
      ScopedTempDir dir("fig7a_enum");
      auto kv = LsmStore::Open(dir.path());
      EnumStore enum_store(1, kv->get(), 4096);
      Stopwatch timer;
      for (const Event& e : events) {
        (void)enum_store.Append(e.ts, e.value);
      }
      (void)enum_store.Flush();
      enum_secs = timer.ElapsedSeconds();
    }

    std::printf("%12llu %16.2f %16.2f %18.0f %18.0f\n", static_cast<unsigned long long>(n),
                sstore_secs, enum_secs, static_cast<double>(n) / sstore_secs,
                static_cast<double>(n) / enum_secs);
  }
  return 0;
}
