// Figure 13 (§7.4): the M-Lab network-trace workload — CMS frequency
// queries over a visit log with Zipf-distributed client IPs, at 5x-class
// compaction PowerLaw(1,1,4,1).
//
// Substitution: the paper uses the 2015 Paris-traceroute M-Lab log (170M
// visits over a year); we generate a Poisson visit process with
// Zipf(s=1.1)-distributed IPs at a laptop scale preserving the same
// heavy-tailed frequency structure, and query visit frequencies of
// random IPs binned by (age, length).
#include "bench/heatmap.h"

int main() {
  ss::bench::HeatmapBenchConfig config;
  config.title = "fig13_mlab_cms_5x";
  config.compaction_tag = "5X-class";
  config.decay = std::make_shared<ss::PowerLawDecay>(1, 1, 4, 1);
  config.model = ss::ArrivalModel::kPoisson;
  config.num_events = 1500000;
  config.mean_interarrival = 21.0;  // ~1.5M visits over the synthetic year
  config.error_trials = 120;
  config.measure_latency = false;
  config.value_universe = 20000;  // distinct client IPs

  // Event source: Poisson arrivals with Zipf IPs (visit frequencies are
  // heavy-tailed, unlike the uniform values of Figures 9-11).
  auto gen = std::make_shared<ss::MLabTraceGenerator>(config.mean_interarrival, 20000, 1.1,
                                                      config.seed);
  config.event_source = [gen] { return gen->Next(); };
  // Probe IPs with traffic-weighted (Zipf) frequency, like querying the
  // visit counts of actually-observed clients.
  auto zipf = std::make_shared<ss::ZipfSampler>(20000, 1.1);
  config.value_sampler = [zipf](ss::Rng& rng) {
    return static_cast<double>(zipf->Sample(rng));
  };
  return ss::bench::RunHeatmapBench(config);
}
