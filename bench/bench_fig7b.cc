// Figure 7(b): cold-cache query-latency distribution. Count queries across
// all 16 (age, length) classes against a disk-resident SummaryStore, with
// every internal cache (window cache, LSM block cache) dropped before each
// query — the paper's worst-case methodology.
//
// Shape to check: a CDF with low median and a bounded tail (the paper's
// PB-scale numbers are 1.3s median / <70s worst-case; at laptop scale the
// absolute values are milliseconds, the stability is the point).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/generators.h"

namespace {

using namespace ss;
using namespace ss::bench;

constexpr uint64_t kNumEvents = 2000000;
constexpr int kQueriesPerClass = 40;

}  // namespace

int main() {
  std::printf("=== Figure 7(b): cold-cache query latency CDF ===\n");
  ScopedTempDir dir("fig7b");
  StoreOptions options;
  options.dir = dir.path();
  auto store = SummaryStore::Open(options);
  StreamConfig config;
  config.decay = std::make_shared<PowerLawDecay>(1, 1, 1, 1);
  config.operators = OperatorSet::Microbench();
  config.raw_threshold = 32;
  StreamId sid = *(*store)->CreateStream(std::move(config));

  SyntheticStreamSpec spec;
  spec.arrival = ArrivalKind::kPoisson;
  spec.mean_interarrival = 16.0;
  spec.seed = 11;
  SyntheticStream gen(spec);
  Timestamp start = 0;
  Timestamp now = 0;
  for (uint64_t i = 0; i < kNumEvents; ++i) {
    Event e = gen.Next();
    if (i == 0) {
      start = e.ts;
    }
    now = e.ts;
    (void)(*store)->Append(sid, e.ts, e.value);
  }
  (void)(*store)->EvictAll();
  std::printf("store: %llu events on disk (%.1f MB), %zu windows\n",
              static_cast<unsigned long long>(kNumEvents),
              static_cast<double>((*store)->backend().ApproximateSizeBytes()) / 1e6,
              (*store)->GetStream(sid).value()->window_count());

  std::vector<double> latencies;
  Rng rng(12);
  for (int ai = 0; ai < 4; ++ai) {
    for (int li = 0; li < 4; ++li) {
      for (int q = 0; q < kQueriesPerClass; ++q) {
        Timestamp t1;
        Timestamp t2;
        if (!SampleQueryRange(rng, now, start, ai, li, &t1, &t2)) {
          continue;
        }
        (*store)->DropCaches();
        QuerySpec query{.t1 = t1, .t2 = t2, .op = QueryOp::kCount};
        Stopwatch timer;
        auto result = (*store)->Query(sid, query);
        if (result.ok()) {
          latencies.push_back(timer.ElapsedMillis());
        }
      }
    }
  }

  std::printf("\n%d cold-cache count queries across all (age,length) classes\n",
              static_cast<int>(latencies.size()));
  std::printf("%12s %14s\n", "percentile", "latency (ms)");
  for (double pct : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    std::printf("%11.0f%% %14.2f\n", pct, Percentile(latencies, pct));
  }
  std::printf("\ntail distribution P(latency >= x):\n");
  std::vector<double> sorted = latencies;
  std::sort(sorted.begin(), sorted.end());
  for (double x : {0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0}) {
    auto it = std::lower_bound(sorted.begin(), sorted.end(), x);
    double p = static_cast<double>(sorted.end() - it) / static_cast<double>(sorted.size());
    std::printf("  P(>= %6.1f ms) = %.4f\n", x, p);
  }
  return 0;
}
