// Figure 9: query error, CI widths and cold-cache latency heatmaps for the
// pathological infinite-variance Pareto (α = 1.2) arrival streams under
// ~100x-class decay PowerLaw(1,1,1,1), for Count / Sum / Bloom / CMS.
//
// Scale substitution: the paper runs 1024 × 1 TB streams (62.5e9 events
// each) on a 12-disk server; we run one laptop-scale stream with the same
// arrival process, decay family, operator set, and (age, length) query
// classes over a synthetic year. Absolute latencies differ; the *shape* —
// which cells are accurate, where errors blow up, how CI width and latency
// move with age and length — is the reproduction target.
#include "bench/heatmap.h"

int main() {
  ss::bench::HeatmapBenchConfig config;
  config.title = "fig9_pareto_infinite_variance_100x";
  config.compaction_tag = "100X-class";
  config.arrival = ss::ArrivalKind::kParetoInfiniteVariance;
  config.mean_interarrival = 16.0;
  config.decay = std::make_shared<ss::PowerLawDecay>(1, 1, 1, 1);
  config.model = ss::ArrivalModel::kGeneric;
  config.num_events = 2000000;
  config.measure_latency = true;
  return ss::bench::RunHeatmapBench(config);
}
