// §7.4 (IBM TSM backup traces): sysadmin queries over a backup-activity log
// — "how many bytes did node 7 upload over the past week?", failed-backup
// counts, etc. — at 5x-class compaction.
//
// Substitution: the paper simulates 10,000 nodes backing up hourly for 7
// years with 1% failures and Wallace-et-al.-style sizes; we simulate a
// 24-node sample with the same cadence/failure model. Each node gets two
// streams, mirroring how a TSM log splits by event type: an upload-bytes
// stream (aggregate summaries) and a sparse failure-event stream (count
// queries). Queries combine sum, count and failure-count at day / week /
// month lengths over ages from days to years.
//
// Expected shape: month- and week-length queries essentially exact
// (<2%, the paper's headline); the residual error concentrates in
// age=years / length=day cells, where a day is a small fraction of an aged
// window and the heavy-tailed backup-size mix dominates.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workload/generators.h"

namespace {

using namespace ss;
using namespace ss::bench;

constexpr int kNodes = 24;
constexpr int kYears = 7;
constexpr Timestamp kHourSecs = 3600;
constexpr Timestamp kDaySecs = 86400;
constexpr Timestamp kWeekSecs = 7 * kDaySecs;
constexpr Timestamp kMonthSecs = 30 * kDaySecs;
constexpr Timestamp kYearSecs = 365 * kDaySecs;
constexpr uint64_t kEventsPerNode = static_cast<uint64_t>(kYears) * 365 * 24;

}  // namespace

int main() {
  std::printf("=== TSM backup-log queries (§7.4) ===\n");
  std::printf("%d nodes x %d years of hourly backups (%.1fM events), 1%% failures\n", kNodes,
              kYears, kNodes * static_cast<double>(kEventsPerNode) / 1e6);

  auto store = SummaryStore::Open(StoreOptions{});
  std::vector<StreamId> bytes_sids;
  std::vector<StreamId> fail_sids;
  std::vector<Oracle> bytes_oracles(kNodes);
  std::vector<Oracle> fail_oracles(kNodes);
  uint64_t raw_bytes = 0;
  for (int node = 0; node < kNodes; ++node) {
    StreamConfig bytes_config;
    bytes_config.decay = std::make_shared<PowerLawDecay>(1, 1, 48, 1);
    bytes_config.operators = OperatorSet::AggregatesOnly();
    bytes_config.arrival_model = ArrivalModel::kGeneric;  // regular arrivals
    bytes_config.raw_threshold = 8;
    bytes_config.seed = 9000 + static_cast<uint64_t>(node);
    bytes_sids.push_back(*(*store)->CreateStream(std::move(bytes_config)));

    StreamConfig fail_config;
    fail_config.decay = std::make_shared<PowerLawDecay>(1, 1, 8, 1);
    fail_config.operators = OperatorSet::AggregatesOnly();
    fail_config.arrival_model = ArrivalModel::kPoisson;  // failures ~ Bernoulli thinning
    fail_config.raw_threshold = 8;
    fail_config.seed = 9500 + static_cast<uint64_t>(node);
    fail_sids.push_back(*(*store)->CreateStream(std::move(fail_config)));

    TsmBackupGenerator gen(static_cast<uint64_t>(node), 0.01, 777);
    for (uint64_t i = 0; i < kEventsPerNode; ++i) {
      Event e = gen.Next();
      bytes_oracles[node].Add(e);
      (void)(*store)->Append(bytes_sids.back(), e.ts, e.value);
      if (e.value == 0.0) {
        fail_oracles[node].Add(Event{e.ts, 1.0});
        (void)(*store)->Append(fail_sids.back(), e.ts, 1.0);
      }
    }
    raw_bytes += kEventsPerNode * 16;
  }
  std::printf("store: %.1f MB raw -> %.2f MB decayed (%.1fx)\n\n", raw_bytes / 1e6,
              (*store)->TotalSizeBytes() / 1e6,
              static_cast<double>(raw_bytes) / static_cast<double>((*store)->TotalSizeBytes()));

  struct QueryClass {
    const char* name;
    Timestamp age;
    Timestamp length;
  };
  const QueryClass classes[] = {
      {"age=days,  len=day", 3 * kDaySecs, kDaySecs},
      {"age=days,  len=week", 3 * kDaySecs, kWeekSecs},
      {"age=months,len=day", 3 * kMonthSecs, kDaySecs},
      {"age=months,len=week", 3 * kMonthSecs, kWeekSecs},
      {"age=months,len=month", 3 * kMonthSecs, kMonthSecs},
      {"age=years, len=day", 3 * kYearSecs, kDaySecs},
      {"age=years, len=week", 3 * kYearSecs, kWeekSecs},
      {"age=years, len=month", 3 * kYearSecs, kMonthSecs},
  };

  std::printf("%-22s %16s %16s %20s\n", "query class", "sum err (95%)", "count err (95%)",
              "failures err (95%/day)");
  Rng rng(5150);
  Timestamp now = static_cast<Timestamp>(kEventsPerNode) * kHourSecs;
  for (const QueryClass& qc : classes) {
    std::vector<double> sum_errs;
    std::vector<double> count_errs;
    std::vector<double> fail_errs;
    for (int trial = 0; trial < 60; ++trial) {
      int node = static_cast<int>(rng.NextBounded(kNodes));
      Timestamp jitter = static_cast<Timestamp>(rng.NextBounded(static_cast<uint64_t>(qc.age)));
      Timestamp t2 = now - qc.age - jitter;
      Timestamp t1 = t2 - qc.length;
      if (t1 < 0) {
        continue;
      }
      QuerySpec spec{.t1 = t1, .t2 = t2, .op = QueryOp::kSum};
      auto sum = (*store)->Query(bytes_sids[static_cast<size_t>(node)], spec);
      spec.op = QueryOp::kCount;
      auto count = (*store)->Query(bytes_sids[static_cast<size_t>(node)], spec);
      auto failures = (*store)->Query(fail_sids[static_cast<size_t>(node)], spec);
      if (sum.ok()) {
        sum_errs.push_back(
            RelativeError(sum->estimate, bytes_oracles[static_cast<size_t>(node)].Sum(t1, t2)));
      }
      if (count.ok()) {
        count_errs.push_back(RelativeError(count->estimate,
                                           bytes_oracles[static_cast<size_t>(node)].Count(t1, t2)));
      }
      if (failures.ok()) {
        double truth = fail_oracles[static_cast<size_t>(node)].Count(t1, t2);
        // Failure counts are tiny (~0.24/node/day); report error per day.
        fail_errs.push_back(std::abs(failures->estimate - truth) /
                            std::max(1.0, static_cast<double>(qc.length / kDaySecs)));
      }
    }
    std::printf("%-22s %15.2f%% %15.2f%% %19.2f\n", qc.name, Percentile(sum_errs, 95) * 100,
                Percentile(count_errs, 95) * 100, Percentile(fail_errs, 95));
  }
  std::printf("\nshape check vs paper: week/month lengths <2%% everywhere; the worst errors sit "
              "at age=years, len=day (a day is a sliver of an aged window), exactly where the "
              "paper reports its maximum.\n");
  return 0;
}
