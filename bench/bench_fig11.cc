// Figure 11: CI-width heatmaps at moderate (5x-class) compaction,
// PowerLaw(1,1,2,1), for a lower-velocity Poisson stream (λ = 10/s in the
// paper; we keep the velocity *relative* to the paper's 5 GB/stream scale).
// With gentler decay the windows are shorter, so the CI upper bound — which
// tracks the largest window spans — tightens across the board, most visibly
// for the Bloom filter. The paper also notes that the same setup with
// Exponential(2,142,1) is strictly worse; we run it as the second config.
#include "bench/heatmap.h"

int main() {
  ss::bench::HeatmapBenchConfig config;
  config.title = "fig11_poisson_5x_powerlaw";
  config.compaction_tag = "5X-class";
  config.arrival = ss::ArrivalKind::kPoisson;
  config.mean_interarrival = 16.0;
  config.decay = std::make_shared<ss::PowerLawDecay>(1, 1, 2, 1);
  config.model = ss::ArrivalModel::kPoisson;
  config.num_events = 1000000;
  config.error_trials = 120;
  config.measure_latency = false;
  int rc = ss::bench::RunHeatmapBench(config);
  if (rc != 0) {
    return rc;
  }

  // The exponential comparison point from §7.3.1.
  config.title = "fig11_poisson_5x_exponential_comparison";
  config.decay = std::make_shared<ss::ExponentialDecay>(2.0, 142, 1);
  return ss::bench::RunHeatmapBench(config);
}
