// Shared infrastructure for the paper-reproduction benchmark harnesses:
// ground-truth oracle over the raw event stream, (age, length) query-class
// machinery (§7.2.2, Figure 8), percentile helpers, and heatmap printing in
// the style of Figures 9-11/13.
#ifndef SUMMARYSTORE_BENCH_BENCH_UTIL_H_
#define SUMMARYSTORE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/core/summary_store.h"
#include "src/random/rng.h"
#include "src/storage/file_util.h"

namespace ss::bench {

// ---------------------------------------------------------------- time scale
// Stream time is in seconds; the synthetic "year" of §7.2.2 with its four
// calendar-based query classes.
inline constexpr Timestamp kMinute = 60;
inline constexpr Timestamp kHour = 3600;
inline constexpr Timestamp kDay = 86400;
inline constexpr Timestamp kMonth = 2628000;  // year / 12
inline constexpr Timestamp kYear = 31536000;

inline const char* kClassNames[4] = {"min", "hr", "day", "mon"};
inline const Timestamp kClassUnits[4] = {kMinute, kHour, kDay, kMonth};

// ------------------------------------------------------------------- oracle
// Exact answers over the raw stream, for measuring query error.
class Oracle {
 public:
  void Add(const Event& event) {
    ts_.push_back(event.ts);
    prefix_sum_.push_back((prefix_sum_.empty() ? 0.0 : prefix_sum_.back()) + event.value);
    by_value_[event.value].push_back(event.ts);
  }

  size_t size() const { return ts_.size(); }
  Timestamp first_ts() const { return ts_.front(); }
  Timestamp last_ts() const { return ts_.back(); }

  // Count of events with t1 <= ts <= t2.
  double Count(Timestamp t1, Timestamp t2) const {
    auto [lo, hi] = Range(t1, t2);
    return static_cast<double>(hi - lo);
  }

  double Sum(Timestamp t1, Timestamp t2) const {
    auto [lo, hi] = Range(t1, t2);
    if (hi == lo) {
      return 0.0;
    }
    return prefix_sum_[hi - 1] - (lo == 0 ? 0.0 : prefix_sum_[lo - 1]);
  }

  double Frequency(double value, Timestamp t1, Timestamp t2) const {
    auto it = by_value_.find(value);
    if (it == by_value_.end()) {
      return 0.0;
    }
    const auto& v = it->second;
    auto lo = std::lower_bound(v.begin(), v.end(), t1);
    auto hi = std::upper_bound(v.begin(), v.end(), t2);
    return static_cast<double>(hi - lo);
  }

  bool Exists(double value, Timestamp t1, Timestamp t2) const {
    return Frequency(value, t1, t2) > 0;
  }

 private:
  std::pair<size_t, size_t> Range(Timestamp t1, Timestamp t2) const {
    auto lo = std::lower_bound(ts_.begin(), ts_.end(), t1);
    auto hi = std::upper_bound(ts_.begin(), ts_.end(), t2);
    return {static_cast<size_t>(lo - ts_.begin()), static_cast<size_t>(hi - ts_.begin())};
  }

  std::vector<Timestamp> ts_;
  std::vector<double> prefix_sum_;
  std::map<double, std::vector<Timestamp>> by_value_;
};

// --------------------------------------------------------------- percentiles
inline double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  double pos = pct / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

// ------------------------------------------------------------ query sampling
// Draws a random query from (age, length) class (ai, li): both uniform in
// [unit, 2·unit), anchored at the stream's end (Figure 8: age = distance
// from now to the query's newer edge).
inline bool SampleQueryRange(Rng& rng, Timestamp now, Timestamp start, int ai, int li,
                             Timestamp* t1, Timestamp* t2) {
  Timestamp age = kClassUnits[ai] +
                  static_cast<Timestamp>(rng.NextBounded(static_cast<uint64_t>(kClassUnits[ai])));
  Timestamp len = kClassUnits[li] +
                  static_cast<Timestamp>(rng.NextBounded(static_cast<uint64_t>(kClassUnits[li])));
  *t2 = now - age;
  *t1 = *t2 - len;
  return *t1 >= start;
}

// ------------------------------------------------------------------ heatmaps
// 4x4 cell grid, indexed [length][age] like the paper's figures (x = age,
// y = length).
struct Heatmap {
  std::string op;
  std::string metric;
  std::string tag;  // e.g. compaction label
  double cell[4][4] = {};

  void Print() const {
    std::printf("\n%s  (%s)  %s\n", op.c_str(), metric.c_str(), tag.c_str());
    std::printf("%8s", "len\\age");
    for (const char* name : kClassNames) {
      std::printf(" %9s", name);
    }
    std::printf("\n");
    for (int li = 0; li < 4; ++li) {
      std::printf("%8s", kClassNames[li]);
      for (int ai = 0; ai < 4; ++ai) {
        double v = cell[li][ai];
        if (v == 0) {
          std::printf(" %9s", "0");
        } else if (v >= 1000 || v < 0.001) {
          std::printf(" %9.1e", v);
        } else {
          std::printf(" %9.3f", v);
        }
      }
      std::printf("\n");
    }
  }
};

// Relative error vs. a baseline; when the baseline is zero, report the raw
// estimate magnitude (this is what makes the paper's month-age/minute-length
// cells blow up to 10^3-10^6).
inline double RelativeError(double estimate, double truth) {
  if (truth == 0.0) {
    return std::abs(estimate);
  }
  return std::abs(estimate - truth) / std::abs(truth);
}

// ------------------------------------------------------------- bench reports
// Machine-readable benchmark telemetry: each harness fills a BenchReport and
// writes BENCH_<name>.json so tools/bench_compare can diff runs against the
// committed baselines. `direction` says which way is better ("higher" for
// throughput, "lower" for latency/overhead); `meta` records the run profile
// (stream/event counts, filters) so only like-for-like runs are compared.
class BenchReport {
 public:
  struct Metric {
    double value = 0.0;
    std::string unit;
    std::string direction;  // "higher" | "lower"
  };

  explicit BenchReport(std::string bench_name) : bench_(std::move(bench_name)) {}

  void AddMeta(const std::string& key, const std::string& value) { meta_[key] = value; }

  void Add(const std::string& name, double value, const std::string& unit,
           const std::string& direction) {
    metrics_[name] = Metric{value, unit, direction};
  }

  const std::string& bench() const { return bench_; }
  const std::map<std::string, std::string>& meta() const { return meta_; }
  const std::map<std::string, Metric>& metrics() const { return metrics_; }

  std::string ToJson() const {
    std::string out = "{\n  \"bench\": \"" + bench_ + "\",\n  \"meta\": {";
    bool first = true;
    for (const auto& [k, v] : meta_) {
      out += first ? "\n" : ",\n";
      out += "    \"" + k + "\": \"" + v + "\"";
      first = false;
    }
    out += "\n  },\n  \"metrics\": {";
    first = true;
    for (const auto& [name, m] : metrics_) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "    \"%s\": {\"value\": %.17g, \"unit\": \"%s\", \"direction\": \"%s\"}",
                    name.c_str(), m.value, m.unit.c_str(), m.direction.c_str());
      out += first ? "\n" : ",\n";
      out += buf;
      first = false;
    }
    out += "\n  }\n}\n";
    return out;
  }

  // Best-effort write; benches report the path (or failure) on stdout.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    std::string json = ToJson();
    size_t written = std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return written == json.size();
  }

  // Minimal parser for the exact shape ToJson writes (plus insignificant
  // whitespace). Not a general JSON parser; bench_compare only ever reads
  // files this emitter produced.
  static bool ParseJson(const std::string& json, BenchReport* out) {
    auto find_string = [&](const std::string& key, size_t from, std::string* value,
                           size_t* end_pos) {
      size_t k = json.find("\"" + key + "\"", from);
      if (k == std::string::npos) {
        return false;
      }
      size_t colon = json.find(':', k);
      size_t open = json.find('"', colon + 1);
      size_t close = json.find('"', open + 1);
      if (colon == std::string::npos || open == std::string::npos ||
          close == std::string::npos) {
        return false;
      }
      *value = json.substr(open + 1, close - open - 1);
      if (end_pos != nullptr) {
        *end_pos = close + 1;
      }
      return true;
    };
    std::string bench_name;
    if (!find_string("bench", 0, &bench_name, nullptr)) {
      return false;
    }
    *out = BenchReport(bench_name);
    // Sections: "meta": { ... }, "metrics": { ... }
    size_t meta_start = json.find("\"meta\"");
    size_t metrics_start = json.find("\"metrics\"");
    if (meta_start == std::string::npos || metrics_start == std::string::npos) {
      return false;
    }
    // Meta: flat string->string pairs.
    size_t pos = json.find('{', meta_start);
    size_t meta_end = json.find('}', pos);
    while (pos != std::string::npos && pos < meta_end) {
      size_t k_open = json.find('"', pos + 1);
      if (k_open == std::string::npos || k_open >= meta_end) {
        break;
      }
      size_t k_close = json.find('"', k_open + 1);
      size_t v_open = json.find('"', json.find(':', k_close) + 1);
      size_t v_close = json.find('"', v_open + 1);
      if (k_close == std::string::npos || v_open == std::string::npos ||
          v_close == std::string::npos || v_close > meta_end) {
        break;
      }
      out->AddMeta(json.substr(k_open + 1, k_close - k_open - 1),
                   json.substr(v_open + 1, v_close - v_open - 1));
      pos = v_close + 1;
    }
    // Metrics: name -> {value, unit, direction} objects.
    pos = json.find('{', metrics_start);
    while (true) {
      size_t k_open = json.find('"', pos + 1);
      if (k_open == std::string::npos) {
        break;
      }
      size_t k_close = json.find('"', k_open + 1);
      size_t obj_open = json.find('{', k_close);
      size_t obj_close = json.find('}', obj_open);
      if (k_close == std::string::npos || obj_open == std::string::npos ||
          obj_close == std::string::npos) {
        break;
      }
      std::string name = json.substr(k_open + 1, k_close - k_open - 1);
      std::string obj = json.substr(obj_open, obj_close - obj_open + 1);
      size_t v = obj.find("\"value\"");
      if (v == std::string::npos) {
        break;
      }
      double value = std::strtod(obj.c_str() + obj.find(':', v) + 1, nullptr);
      std::string unit, direction;
      size_t ignored;
      auto section = [&](const std::string& key, std::string* val) {
        size_t k = obj.find("\"" + key + "\"");
        if (k == std::string::npos) {
          return;
        }
        size_t open = obj.find('"', obj.find(':', k) + 1);
        size_t close = obj.find('"', open + 1);
        if (open != std::string::npos && close != std::string::npos) {
          *val = obj.substr(open + 1, close - open - 1);
        }
      };
      (void)ignored;
      section("unit", &unit);
      section("direction", &direction);
      out->Add(name, value, unit, direction);
      pos = obj_close + 1;
    }
    return !out->metrics().empty();
  }

 private:
  std::string bench_;
  std::map<std::string, std::string> meta_;
  std::map<std::string, Metric> metrics_;
};

// ------------------------------------------------------------------ tempdirs
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& name) : path_("/tmp/ss_bench_" + name) {
    (void)RemoveDirRecursive(path_);
  }
  ~ScopedTempDir() { (void)RemoveDirRecursive(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace ss::bench

#endif  // SUMMARYSTORE_BENCH_BENCH_UTIL_H_
