// Shared infrastructure for the paper-reproduction benchmark harnesses:
// ground-truth oracle over the raw event stream, (age, length) query-class
// machinery (§7.2.2, Figure 8), percentile helpers, and heatmap printing in
// the style of Figures 9-11/13.
#ifndef SUMMARYSTORE_BENCH_BENCH_UTIL_H_
#define SUMMARYSTORE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/core/summary_store.h"
#include "src/random/rng.h"
#include "src/storage/file_util.h"

namespace ss::bench {

// ---------------------------------------------------------------- time scale
// Stream time is in seconds; the synthetic "year" of §7.2.2 with its four
// calendar-based query classes.
inline constexpr Timestamp kMinute = 60;
inline constexpr Timestamp kHour = 3600;
inline constexpr Timestamp kDay = 86400;
inline constexpr Timestamp kMonth = 2628000;  // year / 12
inline constexpr Timestamp kYear = 31536000;

inline const char* kClassNames[4] = {"min", "hr", "day", "mon"};
inline const Timestamp kClassUnits[4] = {kMinute, kHour, kDay, kMonth};

// ------------------------------------------------------------------- oracle
// Exact answers over the raw stream, for measuring query error.
class Oracle {
 public:
  void Add(const Event& event) {
    ts_.push_back(event.ts);
    prefix_sum_.push_back((prefix_sum_.empty() ? 0.0 : prefix_sum_.back()) + event.value);
    by_value_[event.value].push_back(event.ts);
  }

  size_t size() const { return ts_.size(); }
  Timestamp first_ts() const { return ts_.front(); }
  Timestamp last_ts() const { return ts_.back(); }

  // Count of events with t1 <= ts <= t2.
  double Count(Timestamp t1, Timestamp t2) const {
    auto [lo, hi] = Range(t1, t2);
    return static_cast<double>(hi - lo);
  }

  double Sum(Timestamp t1, Timestamp t2) const {
    auto [lo, hi] = Range(t1, t2);
    if (hi == lo) {
      return 0.0;
    }
    return prefix_sum_[hi - 1] - (lo == 0 ? 0.0 : prefix_sum_[lo - 1]);
  }

  double Frequency(double value, Timestamp t1, Timestamp t2) const {
    auto it = by_value_.find(value);
    if (it == by_value_.end()) {
      return 0.0;
    }
    const auto& v = it->second;
    auto lo = std::lower_bound(v.begin(), v.end(), t1);
    auto hi = std::upper_bound(v.begin(), v.end(), t2);
    return static_cast<double>(hi - lo);
  }

  bool Exists(double value, Timestamp t1, Timestamp t2) const {
    return Frequency(value, t1, t2) > 0;
  }

 private:
  std::pair<size_t, size_t> Range(Timestamp t1, Timestamp t2) const {
    auto lo = std::lower_bound(ts_.begin(), ts_.end(), t1);
    auto hi = std::upper_bound(ts_.begin(), ts_.end(), t2);
    return {static_cast<size_t>(lo - ts_.begin()), static_cast<size_t>(hi - ts_.begin())};
  }

  std::vector<Timestamp> ts_;
  std::vector<double> prefix_sum_;
  std::map<double, std::vector<Timestamp>> by_value_;
};

// --------------------------------------------------------------- percentiles
inline double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  double pos = pct / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

// ------------------------------------------------------------ query sampling
// Draws a random query from (age, length) class (ai, li): both uniform in
// [unit, 2·unit), anchored at the stream's end (Figure 8: age = distance
// from now to the query's newer edge).
inline bool SampleQueryRange(Rng& rng, Timestamp now, Timestamp start, int ai, int li,
                             Timestamp* t1, Timestamp* t2) {
  Timestamp age = kClassUnits[ai] +
                  static_cast<Timestamp>(rng.NextBounded(static_cast<uint64_t>(kClassUnits[ai])));
  Timestamp len = kClassUnits[li] +
                  static_cast<Timestamp>(rng.NextBounded(static_cast<uint64_t>(kClassUnits[li])));
  *t2 = now - age;
  *t1 = *t2 - len;
  return *t1 >= start;
}

// ------------------------------------------------------------------ heatmaps
// 4x4 cell grid, indexed [length][age] like the paper's figures (x = age,
// y = length).
struct Heatmap {
  std::string op;
  std::string metric;
  std::string tag;  // e.g. compaction label
  double cell[4][4] = {};

  void Print() const {
    std::printf("\n%s  (%s)  %s\n", op.c_str(), metric.c_str(), tag.c_str());
    std::printf("%8s", "len\\age");
    for (const char* name : kClassNames) {
      std::printf(" %9s", name);
    }
    std::printf("\n");
    for (int li = 0; li < 4; ++li) {
      std::printf("%8s", kClassNames[li]);
      for (int ai = 0; ai < 4; ++ai) {
        double v = cell[li][ai];
        if (v == 0) {
          std::printf(" %9s", "0");
        } else if (v >= 1000 || v < 0.001) {
          std::printf(" %9.1e", v);
        } else {
          std::printf(" %9.3f", v);
        }
      }
      std::printf("\n");
    }
  }
};

// Relative error vs. a baseline; when the baseline is zero, report the raw
// estimate magnitude (this is what makes the paper's month-age/minute-length
// cells blow up to 10^3-10^6).
inline double RelativeError(double estimate, double truth) {
  if (truth == 0.0) {
    return std::abs(estimate);
  }
  return std::abs(estimate - truth) / std::abs(truth);
}

// ------------------------------------------------------------------ tempdirs
class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& name) : path_("/tmp/ss_bench_" + name) {
    (void)RemoveDirRecursive(path_);
  }
  ~ScopedTempDir() { (void)RemoveDirRecursive(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace ss::bench

#endif  // SUMMARYSTORE_BENCH_BENCH_UTIL_H_
