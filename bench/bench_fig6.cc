// Figure 6: outlier detection on the Google-cluster-style CPU trace with
// landmark windows.
//
// The workload (§7.1.2) divides time into intervals and runs a boxplot test
// on each. With summaries alone, a spike inside a multi-interval window
// "smears": min/max and quantile queries over every interval the window
// covers see it, inflating false positives. Landmark windows — populated at
// ingest by a Three-Sigma policy — pull anomalies out of the summaries and
// pin them to their true interval, driving FPs toward zero at a modest
// storage premium, while the moving-average (AVG) workload degrades only
// slightly versus spending the same bytes on gentler summary decay.
//
// Bars reproduced: 10x with LM budget 0% / low / mid / high, and the
// "give the space to summaries instead" ~6x summary-only control.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/analytics/outlier.h"
#include "src/workload/generators.h"

namespace {

using namespace ss;
using namespace ss::bench;

constexpr Timestamp kInterval = 3600;  // boxplot test per hour
constexpr int kSamples = 100000;       // ~69 days of per-minute samples
constexpr double kFenceK = 3.0;        // spike-scale outliers only (the paper's trace regime)

struct IntervalStats {
  double q1, q3, lo, hi, avg;
  bool ok;
};

// Interval statistics through the store's query engine.
IntervalStats QueryInterval(SummaryStore& store, StreamId sid, Timestamp lo, Timestamp hi) {
  IntervalStats out{};
  QuerySpec spec{.t1 = lo, .t2 = hi, .op = QueryOp::kQuantile, .quantile_q = 0.25};
  auto q1 = store.Query(sid, spec);
  spec.quantile_q = 0.75;
  auto q3 = store.Query(sid, spec);
  spec.op = QueryOp::kMin;
  auto min = store.Query(sid, spec);
  spec.op = QueryOp::kMax;
  auto max = store.Query(sid, spec);
  spec.op = QueryOp::kMean;
  auto mean = store.Query(sid, spec);
  if (!q1.ok() || !q3.ok() || !min.ok() || !max.ok() || !mean.ok()) {
    out.ok = false;
    return out;
  }
  out.q1 = q1->estimate;
  out.q3 = q3->estimate;
  out.lo = min->estimate;
  out.hi = max->estimate;
  out.avg = mean->estimate;
  out.ok = true;
  return out;
}

struct ConfigResult {
  std::string name;
  double lm_fraction;
  double compaction;
  size_t false_positives;
  size_t false_negatives;
  double fp_increase;
  double avg_error;
};

}  // namespace

int main() {
  std::printf("=== Figure 6: outlier detection with landmarks (cluster trace) ===\n");

  // Ground truth.
  std::vector<Event> events;
  {
    ClusterTraceGenerator gen(60, 0.01, 4242);
    for (int i = 0; i < kSamples; ++i) {
      events.push_back(gen.Next());
    }
  }
  Timestamp t_end = events.back().ts + 1;
  OutlierReport truth = DetectOutliers(events, 0, t_end, kInterval, kFenceK);
  size_t num_intervals = truth.interval_has_outlier.size();
  std::vector<double> true_avgs = IntervalAverages(events, 0, t_end, kInterval);
  std::printf("trace: %d samples, %zu hourly intervals, %zu contain outliers (%.0f%%)\n\n",
              kSamples, num_intervals, truth.flagged,
              100.0 * static_cast<double>(truth.flagged) / static_cast<double>(num_intervals));

  struct RunDef {
    const char* name;
    std::shared_ptr<const DecayFunction> decay;
    // Fraction of policy-detected anomalies given landmark storage; the
    // paper's budget knob (2.5% / 5% / 7.5% of raw bytes) expressed as a
    // capture probability at this scale.
    double capture_prob;
  };
  const RunDef runs[] = {
      {"10x LM=0%", std::make_shared<PowerLawDecay>(1, 1, 1, 1), 0.0},
      {"10x LM lo", std::make_shared<PowerLawDecay>(1, 1, 1, 1), 0.33},
      {"10x LM mid", std::make_shared<PowerLawDecay>(1, 1, 1, 1), 0.67},
      {"10x LM hi", std::make_shared<PowerLawDecay>(1, 1, 1, 1), 1.0},
      {"6x summary-only", std::make_shared<PowerLawDecay>(1, 1, 4, 1), 0.0},
  };

  std::printf("%-18s %8s %11s %8s %8s %12s %10s\n", "config", "LM bytes", "compaction", "FP",
              "FN", "FP increase", "AVG err");
  for (const RunDef& def : runs) {
    auto store = SummaryStore::Open(StoreOptions{});
    StreamConfig config;
    config.decay = def.decay;
    config.operators = OperatorSet::AggregatesOnly();
    config.operators.quantile = true;
    config.operators.quantile_k = 24;
    config.raw_threshold = 8;
    StreamId sid = *(*store)->CreateStream(std::move(config));

    ThreeSigmaPolicy policy(3.0, 500);
    Rng budget_rng(99);
    for (const Event& e : events) {
      bool landmark = policy.Observe(e.value) && def.capture_prob > 0 &&
                      budget_rng.NextBernoulli(def.capture_prob);
      if (landmark) {
        (void)(*store)->BeginLandmark(sid, e.ts);
        (void)(*store)->Append(sid, e.ts, e.value);
        (void)(*store)->EndLandmark(sid, e.ts);
      } else {
        (void)(*store)->Append(sid, e.ts, e.value);
      }
    }

    auto* stream = (*store)->GetStream(sid).value();
    double lm_bytes = 0;
    for (const auto* lm : stream->LandmarksOverlapping(0, t_end)) {
      lm_bytes += static_cast<double>(lm->SizeBytes());
    }
    double raw_bytes = static_cast<double>(events.size()) * 16.0;
    double store_bytes = static_cast<double>(stream->SizeBytes());

    OutlierReport detected;
    detected.interval_has_outlier.assign(num_intervals, false);
    double avg_err_acc = 0;
    size_t avg_cells = 0;
    for (size_t i = 0; i < num_intervals; ++i) {
      Timestamp lo = static_cast<Timestamp>(i) * kInterval;
      Timestamp hi = lo + kInterval - 1;
      IntervalStats stats = QueryInterval(**store, sid, lo, hi);
      if (!stats.ok) {
        continue;
      }
      double iqr = stats.q3 - stats.q1;
      bool flagged = stats.hi > stats.q3 + kFenceK * iqr || stats.lo < stats.q1 - kFenceK * iqr;
      if (flagged) {
        detected.interval_has_outlier[i] = true;
        ++detected.flagged;
      }
      if (true_avgs[i] != 0) {
        avg_err_acc += std::abs(stats.avg - true_avgs[i]) / std::abs(true_avgs[i]);
        ++avg_cells;
      }
    }
    OutlierAccuracy acc = CompareOutlierReports(truth, detected);
    std::printf("%-18s %7.2f%% %10.1fx %8zu %8zu %11.1f%% %9.4f\n", def.name,
                100.0 * lm_bytes / raw_bytes, raw_bytes / store_bytes, acc.false_positives,
                acc.false_negatives,
                100.0 * static_cast<double>(acc.false_positives) /
                    static_cast<double>(truth.flagged),
                avg_err_acc / static_cast<double>(avg_cells));
  }
  std::printf("\nshape check vs paper: FP increase falls monotonically with LM budget toward 0; "
              "the 6x summary-only control keeps a high FP rate; AVG error stays small "
              "throughout and is slightly better when space goes to summaries.\n");
  return 0;
}
